//! Scale-out Blaze: destination-partitioned execution across machines —
//! an implementation of the extension sketched in Section VI of the paper:
//!
//! > "One potential way to scale out Blaze is to partition the input graph
//! > based on the destination vertex and place each partition in each
//! > machine. This allows a single machine to process only a subset of
//! > edges and vertex-related values, and, more importantly, to propagate
//! > values between scatter and gather threads locally, avoiding the
//! > costly network communications during EDGEMAP execution."
//!
//! Each [`Machine`] owns the edges whose *destination* falls in its vertex
//! range, stored as its own page-interleaved `DiskGraph` over its own
//! device array, and runs a full Blaze engine over them. Because the
//! destination ranges are disjoint, every gather is machine-local: bins
//! never cross machines, so `EdgeMap` needs **zero network traffic**
//! inside an iteration. Between iterations the shards run concurrently on
//! a persistent pool and swap only *frontier deltas* — the newly activated
//! ids, wire-encoded dense or sparse — over the bounded [`exchange`]
//! fabric; [`ClusterStats`] reports the measured traffic alongside real
//! per-shard execution statistics, and the [`router`] maps point queries
//! to their owning shard.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod cluster;
pub mod exchange;
pub mod partition;
pub mod router;

pub use cluster::{Cluster, ClusterStats, Machine};
pub use exchange::ExchangeFabric;
pub use partition::{partition_by_destination, DstPartition};
pub use router::ShardRouter;
