//! Destination-based graph partitioning.

use blaze_graph::{Csr, GraphBuilder};
use blaze_types::VertexId;

/// One machine's share of the graph: the edges whose destination falls in
/// `dst_range`, over the *global* vertex id space.
#[derive(Debug)]
pub struct DstPartition {
    /// The destination range this machine is responsible for.
    pub dst_range: std::ops::Range<VertexId>,
    /// The column-sliced subgraph (global ids; sources keep all their ids,
    /// neighbor lists are filtered to `dst_range`).
    pub subgraph: Csr,
}

/// Splits `g` into `machines` partitions by destination, balancing
/// *in-edge mass* so every machine gathers a similar number of records —
/// the property that keeps the cluster's gather work even.
///
/// Every partition is guaranteed non-empty (at least one vertex) whenever
/// `machines <= num_vertices`: a super-hub holding most of the in-edge
/// mass makes the equal-mass boundaries collide, and the repair pass
/// spreads the collided bounds over the remaining vertices instead of
/// emitting empty ranges. With more machines than vertices the trailing
/// partitions are empty by necessity.
pub fn partition_by_destination(g: &Csr, machines: usize) -> Vec<DstPartition> {
    assert!(machines >= 1);
    let n = g.num_vertices();
    // In-degree mass prefix.
    let mut in_mass = vec![0u64; n];
    for (_, d) in g.edges() {
        in_mass[d as usize] += 1;
    }
    let total: u64 = in_mass.iter().sum();
    // Equal-mass boundaries.
    let mut bounds = Vec::with_capacity(machines + 1);
    bounds.push(0 as VertexId);
    let mut acc = 0u64;
    let mut next = 1u64;
    for (v, &m) in in_mass.iter().enumerate() {
        acc += m;
        while bounds.len() < machines && acc * machines as u64 >= next * total.max(1) {
            bounds.push((v + 1) as VertexId);
            next += 1;
        }
    }
    while bounds.len() < machines {
        bounds.push(n as VertexId);
    }
    bounds.push(n as VertexId);

    // Repair pass: force every range non-empty when there are enough
    // vertices to go around. Bound `i` must sit strictly after bound
    // `i - 1` and leave at least one vertex for each of the `machines - i`
    // ranges behind it. The clamp is always satisfiable by induction:
    // `bounds[i - 1] <= n - (machines - (i - 1))` gives
    // `bounds[i - 1] + 1 <= n - (machines - i)`.
    if machines <= n {
        for i in 1..machines {
            let lo = bounds[i - 1] + 1;
            let hi = (n - (machines - i)) as VertexId;
            bounds[i] = bounds[i].clamp(lo, hi);
        }
    }

    // Route every edge to its owner in one pass (the interior bounds are
    // sorted, so the owner is a binary search away) instead of rescanning
    // the edge list per machine.
    let interior = &bounds[1..machines];
    let mut builders: Vec<GraphBuilder> = (0..machines).map(|_| GraphBuilder::new(n)).collect();
    for (s, d) in g.edges() {
        let owner = interior.partition_point(|&b| b <= d);
        builders[owner].add_edge(s, d);
    }

    builders
        .into_iter()
        .enumerate()
        .map(|(m, b)| DstPartition {
            dst_range: bounds[m]..bounds[m + 1],
            subgraph: b.build(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::gen::{rmat, RmatConfig};

    #[test]
    fn partitions_cover_every_edge_exactly_once() {
        let g = rmat(&RmatConfig::new(9));
        let parts = partition_by_destination(&g, 4);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(|p| p.subgraph.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        // Ranges tile the vertex space.
        assert_eq!(parts[0].dst_range.start, 0);
        assert_eq!(parts[3].dst_range.end as usize, g.num_vertices());
        for w in parts.windows(2) {
            assert_eq!(w[0].dst_range.end, w[1].dst_range.start);
        }
        // Every edge lands in the partition owning its destination.
        for p in &parts {
            for (_, d) in p.subgraph.edges() {
                assert!(p.dst_range.contains(&d));
            }
        }
    }

    #[test]
    fn in_edge_mass_is_balanced() {
        let g = rmat(&RmatConfig::new(11));
        let parts = partition_by_destination(&g, 8);
        let counts: Vec<u64> = parts.iter().map(|p| p.subgraph.num_edges()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.5, "edge balance {counts:?}");
    }

    #[test]
    fn single_machine_is_identity() {
        let g = rmat(&RmatConfig::new(8));
        let parts = partition_by_destination(&g, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].subgraph, g);
    }

    #[test]
    fn super_hub_does_not_produce_empty_partitions() {
        // All mass on vertex 0: the equal-mass loop would emit bounds
        // [0, 1, 1, 1, n] without the repair pass.
        let n = 16;
        let mut b = GraphBuilder::new(n);
        for s in 1..n as VertexId {
            b.add_edge(s, 0);
        }
        let g = b.build();
        let parts = partition_by_destination(&g, 4);
        for p in &parts {
            assert!(!p.dst_range.is_empty(), "empty range: {:?}", p.dst_range);
        }
        let total: u64 = parts.iter().map(|p| p.subgraph.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(parts[0].subgraph.num_edges(), g.num_edges());
    }

    #[test]
    fn more_machines_than_vertices_still_tile() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let parts = partition_by_destination(&g, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].dst_range.start, 0);
        assert_eq!(parts[7].dst_range.end, 3);
        for w in parts.windows(2) {
            assert_eq!(w[0].dst_range.end, w[1].dst_range.start);
        }
        let total: u64 = parts.iter().map(|p| p.subgraph.num_edges()).sum();
        assert_eq!(total, 2);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random digraph as (vertex count, edge list); skew comes from
        /// squaring one of the endpoints toward low ids now and then.
        fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
            (
                1usize..48,
                proptest::collection::vec((0u32..48, 0u32..48, any::<bool>()), 0..256),
            )
                .prop_map(|(n, raw)| {
                    let edges = raw
                        .into_iter()
                        .map(|(s, d, hubify)| {
                            let (s, d) = (s % n as u32, d % n as u32);
                            // Pull roughly half the destinations toward 0
                            // for super-vertex shapes.
                            let d = if hubify { d * d / n as u32 } else { d };
                            (s, d.min(n as u32 - 1))
                        })
                        .collect();
                    (n, edges)
                })
        }

        fn build(n: usize, edges: &[(u32, u32)]) -> Csr {
            let mut b = GraphBuilder::new(n);
            for &(s, d) in edges {
                b.add_edge(s, d);
            }
            b.build()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn ranges_are_disjoint_covering_and_nonempty(
                (n, edges) in graph_strategy(),
                machines in 1usize..10,
            ) {
                let g = build(n, &edges);
                let parts = partition_by_destination(&g, machines);
                prop_assert_eq!(parts.len(), machines);
                prop_assert_eq!(parts[0].dst_range.start, 0);
                prop_assert_eq!(parts[machines - 1].dst_range.end as usize, n);
                for w in parts.windows(2) {
                    prop_assert_eq!(w[0].dst_range.end, w[1].dst_range.start);
                }
                if machines <= n {
                    for p in &parts {
                        prop_assert!(
                            !p.dst_range.is_empty(),
                            "empty partition {:?} with {} machines over {} vertices",
                            p.dst_range, machines, n
                        );
                    }
                }
            }

            #[test]
            fn every_edge_is_conserved_exactly_once(
                (n, edges) in graph_strategy(),
                machines in 1usize..10,
            ) {
                let g = build(n, &edges);
                let parts = partition_by_destination(&g, machines);
                let total: u64 = parts.iter().map(|p| p.subgraph.num_edges()).sum();
                prop_assert_eq!(total, g.num_edges());
                for p in &parts {
                    for (_, d) in p.subgraph.edges() {
                        prop_assert!(p.dst_range.contains(&d));
                    }
                }
            }

            #[test]
            fn mass_stays_within_twice_ideal_when_skew_allows(
                (n, edges) in graph_strategy(),
                machines in 1usize..10,
            ) {
                let g = build(n, &edges);
                let total = g.num_edges();
                let mut in_mass = vec![0u64; n];
                for (_, d) in g.edges() {
                    in_mass[d as usize] += 1;
                }
                let heaviest = in_mass.iter().copied().max().unwrap_or(0);
                // A single vertex's mass is indivisible; 2x ideal is only
                // promisable when no vertex alone exceeds half a share.
                prop_assume!(machines <= n);
                prop_assume!(total > 0 && heaviest * 2 * machines as u64 <= total);
                let parts = partition_by_destination(&g, machines);
                let ideal = total as f64 / machines as f64;
                for p in &parts {
                    let mass = p.subgraph.num_edges() as f64;
                    prop_assert!(
                        mass <= 2.0 * ideal + f64::EPSILON,
                        "partition {:?} holds {} of {} edges (ideal {:.1}) across {} machines",
                        p.dst_range, mass, total, ideal, machines
                    );
                }
            }
        }
    }
}
