//! Destination-based graph partitioning.

use blaze_graph::{Csr, GraphBuilder};
use blaze_types::VertexId;

/// One machine's share of the graph: the edges whose destination falls in
/// `dst_range`, over the *global* vertex id space.
#[derive(Debug)]
pub struct DstPartition {
    /// The destination range this machine is responsible for.
    pub dst_range: std::ops::Range<VertexId>,
    /// The column-sliced subgraph (global ids; sources keep all their ids,
    /// neighbor lists are filtered to `dst_range`).
    pub subgraph: Csr,
}

/// Splits `g` into `machines` partitions by destination, balancing
/// *in-edge mass* so every machine gathers a similar number of records —
/// the property that keeps the cluster's gather work even.
pub fn partition_by_destination(g: &Csr, machines: usize) -> Vec<DstPartition> {
    assert!(machines >= 1);
    let n = g.num_vertices();
    // In-degree mass prefix.
    let mut in_mass = vec![0u64; n];
    for (_, d) in g.edges() {
        in_mass[d as usize] += 1;
    }
    let total: u64 = in_mass.iter().sum();
    // Equal-mass boundaries.
    let mut bounds = Vec::with_capacity(machines + 1);
    bounds.push(0 as VertexId);
    let mut acc = 0u64;
    let mut next = 1u64;
    for (v, &m) in in_mass.iter().enumerate() {
        acc += m;
        while bounds.len() < machines && acc * machines as u64 >= next * total.max(1) {
            bounds.push((v + 1) as VertexId);
            next += 1;
        }
    }
    while bounds.len() < machines {
        bounds.push(n as VertexId);
    }
    bounds.push(n as VertexId);

    (0..machines)
        .map(|m| {
            let dst_range = bounds[m]..bounds[m + 1];
            let mut b = GraphBuilder::new(n);
            for (s, d) in g.edges() {
                if dst_range.contains(&d) {
                    b.add_edge(s, d);
                }
            }
            DstPartition {
                dst_range,
                subgraph: b.build(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_graph::gen::{rmat, RmatConfig};

    #[test]
    fn partitions_cover_every_edge_exactly_once() {
        let g = rmat(&RmatConfig::new(9));
        let parts = partition_by_destination(&g, 4);
        assert_eq!(parts.len(), 4);
        let total: u64 = parts.iter().map(|p| p.subgraph.num_edges()).sum();
        assert_eq!(total, g.num_edges());
        // Ranges tile the vertex space.
        assert_eq!(parts[0].dst_range.start, 0);
        assert_eq!(parts[3].dst_range.end as usize, g.num_vertices());
        for w in parts.windows(2) {
            assert_eq!(w[0].dst_range.end, w[1].dst_range.start);
        }
        // Every edge lands in the partition owning its destination.
        for p in &parts {
            for (_, d) in p.subgraph.edges() {
                assert!(p.dst_range.contains(&d));
            }
        }
    }

    #[test]
    fn in_edge_mass_is_balanced() {
        let g = rmat(&RmatConfig::new(11));
        let parts = partition_by_destination(&g, 8);
        let counts: Vec<u64> = parts.iter().map(|p| p.subgraph.num_edges()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.5, "edge balance {counts:?}");
    }

    #[test]
    fn single_machine_is_identity() {
        let g = rmat(&RmatConfig::new(8));
        let parts = partition_by_destination(&g, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].subgraph, g);
    }
}
