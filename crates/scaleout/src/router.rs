//! Routing point queries (a BFS source, a degree lookup) to the shard that
//! owns the vertex.
//!
//! Partitioned ids route by binary search over the partition bounds — the
//! same ranges [`partition_by_destination`] produced. Ids outside the
//! partitioned space (a query against a vertex the current partition table
//! predates, or an opaque key such as a query id) fall back to a
//! consistent-hash ring, so adding a shard remaps only `~1/shards` of the
//! fallback keys instead of reshuffling everything.
//!
//! [`partition_by_destination`]: crate::partition::partition_by_destination

use blaze_types::VertexId;

/// Virtual nodes per shard on the fallback ring; 16 keeps the expected
/// imbalance of the hash fallback under ~25% without bloating lookups.
const VNODES: usize = 16;

/// Fibonacci-style avalanche mix (splitmix64 finalizer): cheap, stateless,
/// and good enough that vnode points spread uniformly on the ring.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps vertex ids to owning shards: range lookup for partitioned ids,
/// consistent hashing for everything else.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// Partition bounds, `shards + 1` entries; shard `i` owns
    /// `bounds[i]..bounds[i + 1]`.
    bounds: Vec<VertexId>,
    /// Sorted consistent-hash ring of `(point, shard)` vnodes.
    ring: Vec<(u64, usize)>,
}

impl ShardRouter {
    /// Builds a router over partition `bounds` (monotone, `shards + 1`
    /// entries starting at the first owned id).
    pub fn new(bounds: Vec<VertexId>) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds monotone");
        let shards = bounds.len() - 1;
        let mut ring: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| {
                (0..VNODES).map(move |v| (splitmix64(((s as u64) << 16) | v as u64 | 1 << 40), s))
            })
            .collect();
        ring.sort_unstable();
        Self { bounds, ring }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The id range shard `i` owns.
    pub fn range(&self, shard: usize) -> std::ops::Range<VertexId> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// Routes a vertex id: range lookup when the id is partitioned,
    /// consistent-hash fallback otherwise.
    pub fn route(&self, v: VertexId) -> usize {
        // panic-audit: unreachable — the constructor builds `bounds` as
        // `shards + 1 >= 2` entries and nothing mutates it afterwards.
        let last = *self.bounds.last().expect("bounds non-empty");
        if v >= self.bounds[0] && v < last {
            // First bound b with b > v, among the interior bounds.
            self.bounds[1..self.bounds.len() - 1].partition_point(|&b| b <= v)
        } else {
            self.route_key(u64::from(v))
        }
    }

    /// Routes an arbitrary key by consistent hashing — stable under shard
    /// count changes for all but `~1/shards` of the key space.
    pub fn route_key(&self, key: u64) -> usize {
        let point = splitmix64(key);
        let i = self.ring.partition_point(|&(p, _)| p < point);
        self.ring[i % self.ring.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_lookup_matches_linear_scan() {
        let bounds = vec![0u32, 10, 10, 57, 100];
        let router = ShardRouter::new(bounds.clone());
        assert_eq!(router.shards(), 4);
        for v in 0..100u32 {
            let expect = (0..4)
                .find(|&s| (bounds[s]..bounds[s + 1]).contains(&v))
                .unwrap();
            assert_eq!(router.route(v), expect, "v={v}");
        }
        assert_eq!(router.range(1), 10..10);
        assert_eq!(router.range(2), 10..57);
    }

    #[test]
    fn unpartitioned_ids_fall_back_to_the_ring() {
        let router = ShardRouter::new(vec![0, 50, 100]);
        // Out-of-range ids still land on a valid shard, deterministically.
        for v in [100u32, 5000, u32::MAX] {
            let s = router.route(v);
            assert!(s < 2);
            assert_eq!(s, router.route(v), "stable");
        }
    }

    #[test]
    fn hash_fallback_spreads_keys_over_all_shards() {
        let router = ShardRouter::new(vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let mut hits = [0usize; 8];
        for key in 0..4000u64 {
            hits[router.route_key(key)] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(h > 0, "shard {s} never chosen: {hits:?}");
        }
        let max = *hits.iter().max().unwrap() as f64;
        let min = *hits.iter().min().unwrap() as f64;
        assert!(max / min < 4.0, "fallback grossly unbalanced: {hits:?}");
    }

    #[test]
    fn consistent_hashing_limits_remapping_on_growth() {
        let four = ShardRouter::new(vec![0, 1, 2, 3, 4]);
        let five = ShardRouter::new(vec![0, 1, 2, 3, 4, 5]);
        let keys = 4000u64;
        let moved = (0..keys)
            .filter(|&k| {
                let a = four.route_key(k);
                let b = five.route_key(k);
                a != b && b != 4 // moves to the new shard don't count
            })
            .count();
        // Pure consistent hashing moves only keys adjacent to new vnodes;
        // allow generous slack but far below the ~4/5 a mod would remap.
        assert!(
            moved < keys as usize / 4,
            "{moved} of {keys} keys moved between old shards"
        );
    }
}
