//! Model-checked tests of the [`ExchangeFabric`]'s all-to-all round
//! protocol — the synchronization the concurrent superstep stands on. The
//! properties proved across every explored schedule: a round delivers
//! every byte of every shard's payload intact (no frame lost, reordered,
//! or duplicated), backpressure on capacity-1 links never deadlocks the
//! collective, and consecutive rounds on the same fabric never mix
//! payloads.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-scaleout --test loom_exchange --release`
#![cfg(loom)]

use blaze_scaleout::ExchangeFabric;
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// Two shards swap multi-frame payloads over capacity-1 links: the frame
/// pump must interleave sends with inbox drains, so the round completes
/// (no deadlock) and both payloads arrive intact in every schedule.
#[test]
fn two_shards_swap_multiframe_payloads_without_deadlock() {
    let report = check_with(cfg(2), || {
        // 2-byte frames over capacity-1 links: payloads of 5 and 3 bytes
        // need 3 and 2 frames, forcing backpressure on every link.
        let fabric = Arc::new(ExchangeFabric::new(2, 1, 2));
        let pa: Vec<u8> = vec![1, 2, 3, 4, 5];
        let pb: Vec<u8> = vec![9, 8, 7];
        let peer = {
            let fabric = fabric.clone();
            let pb = pb.clone();
            thread::spawn(move || fabric.exchange(1, &pb))
        };
        let inbox0 = fabric.exchange(0, &pa);
        let inbox1 = peer.join().unwrap();
        assert_eq!(inbox0[1], pb, "shard 0 must receive shard 1's payload");
        assert_eq!(inbox1[0], pa, "shard 1 must receive shard 0's payload");
        assert!(inbox0[0].is_empty() && inbox1[1].is_empty());
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// An empty payload still closes the round: the last-frame handshake, not
/// payload bytes, is what completes the collective.
#[test]
fn empty_payload_still_completes_the_round() {
    let report = check_with(cfg(2), || {
        let fabric = Arc::new(ExchangeFabric::new(2, 1, 2));
        let peer = {
            let fabric = fabric.clone();
            thread::spawn(move || fabric.exchange(1, &[]))
        };
        let inbox0 = fabric.exchange(0, &[42]);
        let inbox1 = peer.join().unwrap();
        assert!(inbox0[1].is_empty());
        assert_eq!(inbox1[0], vec![42]);
        assert_eq!(fabric.messages_sent(), 2);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Back-to-back rounds on one fabric: the second round's frames must never
/// leak into the first (the superstep barrier between rounds is modeled by
/// the join), and both rounds deliver their own payloads.
#[test]
fn consecutive_rounds_do_not_mix_payloads() {
    let report = check_with(cfg(1), || {
        let fabric = Arc::new(ExchangeFabric::new(2, 1, 2));
        for round in 0u8..2 {
            let pa = vec![round; 3];
            let pb = vec![round ^ 0xff];
            let peer = {
                let fabric = fabric.clone();
                let pb = pb.clone();
                thread::spawn(move || fabric.exchange(1, &pb))
            };
            let inbox0 = fabric.exchange(0, &pa);
            let inbox1 = peer.join().unwrap();
            assert_eq!(inbox0[1], pb, "round {round} corrupted");
            assert_eq!(inbox1[0], pa, "round {round} corrupted");
        }
    });
    assert!(report.executions > 1, "explored only one schedule");
}
