//! Submission/completion IO backends.
//!
//! The paper keeps its SSDs saturated by issuing *asynchronous* reads from
//! one IO thread per device (libaio, Section IV-C). This module is the
//! reproduction's equivalent: the engine's per-device IO worker no longer
//! blocks on each merged request but pumps a submission queue / completion
//! queue pair behind the [`IoBackend`] trait, keeping up to `queue_depth`
//! requests in flight per device.
//!
//! Two backends ship here:
//!
//! * [`SyncBackend`] — depth-1 reads performed synchronously on the
//!   submitting thread, in submission order. This is the default and its
//!   device traffic is byte-for-byte identical to the pre-queue engine: the
//!   same [`StripedStorage::read_local_run`] calls in the same order.
//! * [`ThreadedBackend`] — a small per-device submitter pool that drains a
//!   bounded submission queue and delivers completions out of order,
//!   issuing reads through the queue-depth-aware
//!   [`read_local_run_at_depth`](StripedStorage::read_local_run_at_depth)
//!   path so modeled devices overlap request latency across the in-flight
//!   window. A real io_uring backend slots in behind the same trait (see
//!   `uring`, feature `io-uring`).
//!
//! Back-pressure is structural: `submit` blocks once `queue_depth` requests
//! are in flight on a device, so a backend can never be buried, and every
//! submitted buffer comes back exactly once through a [`Completion`] —
//! including on error, which is what lets the engine drain cleanly and
//! return its buffers to the pool when a device fails mid-job.

use std::collections::VecDeque;
use std::time::Instant;

use blaze_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use blaze_sync::queue::{ArrayQueue, SegQueue};
use blaze_sync::{thread, Arc, Backoff, Condvar, Mutex};

use blaze_types::{CachePadded, DeviceId, Result};

use crate::buffer::IoBuffer;
use crate::request::IoRequest;
use crate::stripe::StripedStorage;

/// Which IO backend an engine should construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackendKind {
    /// Depth-1 blocking reads on the submitting thread (the default;
    /// byte-for-byte the published engine's device traffic).
    #[default]
    Sync,
    /// Per-device submitter pool keeping up to the configured queue depth
    /// in flight, completions out of order.
    Threaded,
}

impl IoBackendKind {
    /// Builds the backend over `storage` with the given per-device queue
    /// depth (clamped to ≥ 1; [`Sync`](Self::Sync) is always depth 1).
    pub fn build(self, storage: Arc<StripedStorage>, queue_depth: usize) -> Arc<dyn IoBackend> {
        match self {
            IoBackendKind::Sync => Arc::new(SyncBackend::new(storage)),
            IoBackendKind::Threaded => Arc::new(ThreadedBackend::new(storage, queue_depth)),
        }
    }
}

/// One finished request coming back out of a backend's completion queue.
#[derive(Debug)]
pub struct Completion {
    /// The caller's tag, echoed back verbatim.
    pub tag: u64,
    /// The request this completion answers.
    pub request: IoRequest,
    /// The buffer the request was submitted with; on success its first
    /// `request.num_pages` pages hold the data.
    pub buffer: IoBuffer,
    /// Whether the read succeeded.
    pub result: Result<()>,
    /// Wall-clock service time of the request, submission to completion,
    /// in nanoseconds.
    pub service_ns: u64,
}

/// A per-device submission-queue / completion-queue IO engine.
///
/// The engine's contract with a backend:
///
/// * `submit` hands over a request plus the buffer to fill. It may block
///   (back-pressure) but never fails; ownership of the buffer transfers to
///   the backend until the matching [`Completion`] is reaped.
/// * Every submitted request produces exactly one completion on the same
///   device — success or error — so submitted buffers are never lost.
/// * Completions may arrive in any order; `tag` and `request` identify them.
/// * One thread pumps each device (the engine's per-device IO worker), so
///   implementations may assume per-device submit/reap calls are not
///   concurrent with each other — but different devices run in parallel.
pub trait IoBackend: Send + Sync {
    /// The in-flight window per device the backend was configured with.
    /// Callers must not exceed it between submits and reaps.
    fn queue_depth(&self) -> usize;

    /// Submits one read request against `device`; `buffer` must hold at
    /// least `request.num_pages` pages.
    fn submit(&self, device: DeviceId, request: IoRequest, buffer: IoBuffer, tag: u64);

    /// Takes one completion for `device` if one is ready.
    fn try_reap(&self, device: DeviceId) -> Option<Completion>;

    /// Takes the next completion for `device`, backing off (spin → yield)
    /// until one arrives. Only valid while a request is in flight, which
    /// the engine's submit/reap accounting guarantees.
    fn reap(&self, device: DeviceId) -> Completion {
        let backoff = Backoff::new();
        loop {
            if let Some(completion) = self.try_reap(device) {
                return completion;
            }
            backoff.snooze();
        }
    }
}

/// The depth-1 backend: `submit` performs the read synchronously on the
/// calling thread via [`StripedStorage::read_local_run`] and parks the
/// completion for the immediately following reap.
///
/// Because the read happens inline, in submission order, through the same
/// storage entry point as the pre-queue engine, the device request stream
/// is byte-for-byte identical to the published IO path — this is what makes
/// it the safe default.
pub struct SyncBackend {
    storage: Arc<StripedStorage>,
    /// Per-device parked completions. A `Mutex<VecDeque>` rather than a
    /// lock-free queue: with depth 1 there is never contention, the lock is
    /// only a container.
    done: Vec<CachePadded<Mutex<VecDeque<Completion>>>>,
}

impl SyncBackend {
    /// Creates the backend over `storage`.
    pub fn new(storage: Arc<StripedStorage>) -> Self {
        let done = (0..storage.num_devices())
            .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
            .collect();
        Self { storage, done }
    }
}

impl IoBackend for SyncBackend {
    fn queue_depth(&self) -> usize {
        1
    }

    fn submit(&self, device: DeviceId, request: IoRequest, mut buffer: IoBuffer, tag: u64) {
        let t0 = Instant::now();
        let n = request.num_pages as usize;
        let result = self
            .storage
            .read_local_run(device, request.first_page, buffer.pages_mut(n));
        self.done[device].lock().push_back(Completion {
            tag,
            request,
            buffer,
            result,
            service_ns: t0.elapsed().as_nanos() as u64,
        });
    }

    fn try_reap(&self, device: DeviceId) -> Option<Completion> {
        self.done[device].lock().pop_front()
    }
}

impl std::fmt::Debug for SyncBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncBackend")
            .field("num_devices", &self.done.len())
            .finish()
    }
}

/// One request travelling through a [`ThreadedBackend`] submission queue.
struct Inflight {
    request: IoRequest,
    buffer: IoBuffer,
    tag: u64,
    /// In-flight depth on the device at submission time (including this
    /// request), recorded by the submitting engine thread so the modeled
    /// service time does not depend on submitter-thread scheduling.
    depth: u32,
    submitted: Instant,
}

/// SQ/CQ pair of one device inside a [`ThreadedBackend`].
struct DeviceChannel {
    /// Bounded submission queue; its capacity *is* the queue depth, so a
    /// full queue blocks `submit` — structural back-pressure.
    sq: ArrayQueue<Inflight>,
    /// Unbounded completion queue (never holds more than `queue_depth`
    /// entries, by the submit/reap contract).
    cq: SegQueue<Completion>,
    /// Requests submitted but not yet reaped, maintained by the single
    /// engine thread pumping this device.
    occupancy: AtomicU64,
    /// Doorbell for the three blocking waits below. It guards no data —
    /// the queues are their own state — it only makes "check the queue,
    /// then sleep" atomic against the matching wakeup: a waiter re-checks
    /// its queue while holding the doorbell, and every signaller takes the
    /// doorbell (empty critical section) before notifying, so a push/pop
    /// racing the check either is seen by it or notifies after the wait
    /// began.
    doorbell: Mutex<()>,
    /// Signalled after each SQ push: work for an idle submitter.
    sq_pushed: Condvar,
    /// Signalled after each SQ pop: room for a back-pressured `submit`.
    sq_popped: Condvar,
    /// Signalled after each CQ push: a completion for a blocked `reap`.
    cq_pushed: Condvar,
}

impl DeviceChannel {
    /// Rings `cv` after a queue transition (see `doorbell`).
    fn ring(&self, cv: &Condvar) {
        drop(self.doorbell.lock());
        cv.notify_all();
    }
}

struct ThreadedShared {
    storage: Arc<StripedStorage>,
    channels: Vec<CachePadded<DeviceChannel>>,
    shutdown: AtomicBool,
}

impl ThreadedShared {
    /// One submitter thread's loop: drain the device's SQ until shutdown.
    fn run_submitter(&self, device: DeviceId) {
        let channel = &self.channels[device];
        let backoff = Backoff::new();
        loop {
            let inflight = match channel.sq.pop() {
                Some(i) => i,
                None if !backoff.is_completed() => {
                    backoff.snooze();
                    continue;
                }
                None => {
                    // Spinning has not helped: park on the doorbell. The
                    // re-check under the lock pairs with `ring` in submit
                    // and shutdown, so neither wakeup can be lost.
                    let mut guard = channel.doorbell.lock();
                    match channel.sq.pop() {
                        Some(i) => i,
                        None => {
                            if self.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            channel.sq_pushed.wait(&mut guard);
                            continue;
                        }
                    }
                }
            };
            backoff.reset();
            channel.ring(&channel.sq_popped);
            let Inflight {
                request,
                mut buffer,
                tag,
                depth,
                submitted,
            } = inflight;
            let n = request.num_pages as usize;
            let result = self.storage.read_local_run_at_depth(
                device,
                request.first_page,
                buffer.pages_mut(n),
                depth,
            );
            channel.cq.push(Completion {
                tag,
                request,
                buffer,
                result,
                service_ns: submitted.elapsed().as_nanos() as u64,
            });
            channel.ring(&channel.cq_pushed);
        }
    }
}

/// The threaded async backend: per device, a bounded submission queue
/// drained by a small pool of submitter threads, each performing the read
/// and pushing the completion. With more than one submitter per device,
/// completions genuinely reorder; with `queue_depth` > 1, modeled devices
/// overlap the fixed request latency across the window.
///
/// This is the stand-in for the paper's libaio IO thread: the engine-facing
/// semantics (deep queue, out-of-order completion, structural
/// back-pressure) match, while the kernel-level mechanism is a thread pool
/// instead of an async syscall interface — see `DESIGN.md` §9 and the
/// feature-gated `uring` slot-in.
pub struct ThreadedBackend {
    shared: Arc<ThreadedShared>,
    queue_depth: usize,
    submitters: Vec<thread::JoinHandle<()>>,
}

impl ThreadedBackend {
    /// Per-device submitter threads: enough to overlap real blocking reads
    /// without spawning a thread per queue slot at deep windows.
    const MAX_SUBMITTERS_PER_DEVICE: usize = 4;

    /// Creates the backend over `storage` with `queue_depth` in-flight
    /// requests per device (clamped to ≥ 1) and spawns its submitter pool.
    pub fn new(storage: Arc<StripedStorage>, queue_depth: usize) -> Self {
        let queue_depth = queue_depth.max(1);
        let num_devices = storage.num_devices();
        let shared = Arc::new(ThreadedShared {
            storage,
            channels: (0..num_devices)
                .map(|_| {
                    CachePadded::new(DeviceChannel {
                        sq: ArrayQueue::new(queue_depth),
                        cq: SegQueue::new(),
                        occupancy: AtomicU64::new(0),
                        doorbell: Mutex::new(()),
                        sq_pushed: Condvar::new(),
                        sq_popped: Condvar::new(),
                        cq_pushed: Condvar::new(),
                    })
                })
                .collect(),
            shutdown: AtomicBool::new(false),
        });
        let per_device = queue_depth.min(Self::MAX_SUBMITTERS_PER_DEVICE);
        let submitters = (0..num_devices)
            .flat_map(|device| (0..per_device).map(move |_| device))
            .map(|device| {
                let shared = shared.clone();
                thread::spawn(move || shared.run_submitter(device))
            })
            .collect();
        Self {
            shared,
            queue_depth,
            submitters,
        }
    }
}

impl IoBackend for ThreadedBackend {
    fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    fn submit(&self, device: DeviceId, request: IoRequest, buffer: IoBuffer, tag: u64) {
        let channel = &self.shared.channels[device];
        // Occupancy is only written by the single engine thread pumping
        // this device (incremented here, decremented in try_reap), so it
        // is a uni-threaded counter; submitter threads never touch it.
        // sync-audit: Relaxed — a service-model depth hint, not a sync edge.
        let depth = channel.occupancy.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inflight = Inflight {
            request,
            buffer,
            tag,
            depth: depth.min(u32::MAX as u64) as u32,
            submitted: Instant::now(),
        };
        let backoff = Backoff::new();
        // A full SQ is the back-pressure point: the engine thread waits for
        // a submitter to drain a slot — spinning briefly, then parking on
        // the doorbell. (The engine additionally reaps before exceeding
        // queue_depth, so in practice this path rarely blocks.)
        'push: loop {
            match channel.sq.push(inflight) {
                Ok(()) => break 'push,
                Err(rejected) => inflight = rejected,
            }
            if !backoff.is_completed() {
                backoff.snooze();
                continue;
            }
            let mut guard = channel.doorbell.lock();
            loop {
                match channel.sq.push(inflight) {
                    Ok(()) => break 'push,
                    Err(rejected) => inflight = rejected,
                }
                channel.sq_popped.wait(&mut guard);
            }
        }
        channel.ring(&channel.sq_pushed);
    }

    fn try_reap(&self, device: DeviceId) -> Option<Completion> {
        let channel = &self.shared.channels[device];
        let completion = channel.cq.pop()?;
        // sync-audit: Relaxed — see submit: same uni-threaded depth counter.
        channel.occupancy.fetch_sub(1, Ordering::Relaxed);
        Some(completion)
    }

    fn reap(&self, device: DeviceId) -> Completion {
        let backoff = Backoff::new();
        loop {
            if let Some(completion) = self.try_reap(device) {
                return completion;
            }
            if !backoff.is_completed() {
                backoff.snooze();
                continue;
            }
            let channel = &self.shared.channels[device];
            let mut guard = channel.doorbell.lock();
            // Re-check under the doorbell (a completion pushed before the
            // lock is visible; one pushed after will ring it).
            if let Some(completion) = self.try_reap(device) {
                return completion;
            }
            channel.cq_pushed.wait(&mut guard);
        }
    }
}

impl Drop for ThreadedBackend {
    fn drop(&mut self) {
        // Submitters drain their SQ before honouring shutdown, so any
        // requests still queued complete (into the CQ) rather than leak
        // their buffers.
        self.shared.shutdown.store(true, Ordering::Release);
        for channel in self.shared.channels.iter() {
            channel.ring(&channel.sq_pushed);
        }
        for handle in self.submitters.drain(..) {
            // panic-audit: a submitter thread runs no user code; a panic
            // there is a backend bug and must surface, not be swallowed.
            handle.join().expect("IO submitter thread panicked");
        }
    }
}

impl std::fmt::Debug for ThreadedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBackend")
            .field("num_devices", &self.shared.channels.len())
            .field("queue_depth", &self.queue_depth)
            .field("submitters", &self.submitters.len())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_types::PAGE_SIZE;

    /// Storage of `pages` global pages striped over `devices`, each page
    /// filled with its global id.
    fn storage(devices: usize, pages: u64) -> Arc<StripedStorage> {
        let s = Arc::new(StripedStorage::in_memory(devices).unwrap());
        for p in 0..pages {
            s.write_page(p, &vec![p as u8; PAGE_SIZE]).unwrap();
        }
        s
    }

    fn backend_round_trip(backend: &dyn IoBackend, s: &StripedStorage, pages_per_device: u64) {
        let window = backend.queue_depth();
        for device in 0..s.num_devices() {
            let mut submitted = 0u64;
            let mut reaped = 0;
            let mut seen = vec![false; pages_per_device as usize];
            while reaped < pages_per_device {
                while submitted < pages_per_device && (submitted - reaped) < window as u64 {
                    let request = IoRequest {
                        first_page: submitted,
                        num_pages: 1,
                    };
                    backend.submit(device, request, IoBuffer::new(), submitted);
                    submitted += 1;
                }
                let c = backend.reap(device);
                c.result.unwrap();
                assert_eq!(c.tag, c.request.first_page);
                let global = s.global_page(device, c.request.first_page);
                assert!(
                    c.buffer.pages(1).iter().all(|&b| b == global as u8),
                    "device {device} local {} returned wrong bytes",
                    c.request.first_page
                );
                assert!(!seen[c.request.first_page as usize], "duplicate completion");
                seen[c.request.first_page as usize] = true;
                reaped += 1;
            }
            assert!(backend.try_reap(device).is_none(), "no stray completions");
        }
    }

    #[test]
    fn sync_backend_round_trips_in_order() {
        let s = storage(2, 8);
        let backend = SyncBackend::new(s.clone());
        assert_eq!(backend.queue_depth(), 1);
        backend_round_trip(&backend, &s, 4);
    }

    #[test]
    fn threaded_backend_round_trips_at_depths() {
        for qd in [1usize, 2, 8, 32] {
            let s = storage(3, 30);
            let backend = ThreadedBackend::new(s.clone(), qd);
            assert_eq!(backend.queue_depth(), qd);
            backend_round_trip(&backend, &s, 10);
        }
    }

    #[test]
    fn kind_builds_matching_backend() {
        let s = storage(1, 4);
        assert_eq!(IoBackendKind::default(), IoBackendKind::Sync);
        let sync = IoBackendKind::Sync.build(s.clone(), 16);
        assert_eq!(sync.queue_depth(), 1, "sync is always depth 1");
        let threaded = IoBackendKind::Threaded.build(s.clone(), 16);
        assert_eq!(threaded.queue_depth(), 16);
        let clamped = IoBackendKind::Threaded.build(s, 0);
        assert_eq!(clamped.queue_depth(), 1, "depth 0 clamps to 1");
    }

    #[test]
    fn errors_come_back_as_completions_with_buffers() {
        // Requests past the end of the device must complete with an error
        // and still hand the buffer back.
        let s = storage(1, 4);
        for backend in [
            Arc::new(SyncBackend::new(s.clone())) as Arc<dyn IoBackend>,
            Arc::new(ThreadedBackend::new(s.clone(), 2)) as Arc<dyn IoBackend>,
        ] {
            backend.submit(
                0,
                IoRequest {
                    first_page: 100,
                    num_pages: 2,
                },
                IoBuffer::new(),
                7,
            );
            let c = backend.reap(0);
            assert_eq!(c.tag, 7);
            assert!(c.result.is_err(), "out-of-range read must fail");
            assert_eq!(c.buffer.capacity_pages(), blaze_types::MAX_MERGED_PAGES);
        }
    }

    #[test]
    fn threaded_backend_multi_page_requests() {
        let s = storage(2, 16);
        let backend = ThreadedBackend::new(s.clone(), 4);
        backend.submit(
            1,
            IoRequest {
                first_page: 2,
                num_pages: 3,
            },
            IoBuffer::new(),
            0,
        );
        let c = backend.reap(1);
        c.result.unwrap();
        for k in 0..3u64 {
            let global = s.global_page(1, 2 + k);
            let page = &c.buffer.pages(3)[(k as usize) * PAGE_SIZE..][..PAGE_SIZE];
            assert!(page.iter().all(|&b| b == global as u8), "page {k}");
        }
    }

    #[test]
    fn dropping_threaded_backend_with_queued_work_completes_it() {
        // Submit without reaping, then drop: submitters must drain the SQ
        // (completions land in the CQ and are dropped with the backend)
        // rather than deadlock on join.
        let s = storage(1, 8);
        let backend = ThreadedBackend::new(s, 4);
        for i in 0..4u64 {
            backend.submit(
                0,
                IoRequest {
                    first_page: i,
                    num_pages: 1,
                },
                IoBuffer::new(),
                i,
            );
        }
        drop(backend);
    }
}
