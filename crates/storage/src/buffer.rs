//! IO buffers and the free/filled buffer queues of the EdgeMap engine
//! (Figure 5, steps 3–7).
//!
//! A fixed set of buffers is allocated up front (the paper uses a static
//! 64 MiB pool for all workloads). IO threads take buffers from the *free*
//! MPMC queue, fill them with up to [`MAX_MERGED_PAGES`] pages, and push them
//! to the *filled* MPMC queue; scatter threads pop filled buffers and return
//! them to the free queue when done. Because scatter keeps pace with IO, a
//! small pool suffices — if it ever drains, IO threads back off, which is
//! exactly the "fast producer, slow consumer" stall the paper describes for
//! Graphene (Section III-C).

use blaze_sync::queue::{ArrayQueue, SegQueue};
use blaze_sync::Backoff;

use blaze_types::{PageId, MAX_MERGED_PAGES, PAGE_SIZE};

/// A reusable IO buffer large enough for one merged request.
#[derive(Debug)]
pub struct IoBuffer {
    data: Box<[u8]>,
}

impl IoBuffer {
    /// Allocates a zeroed buffer of [`MAX_MERGED_PAGES`] pages.
    pub fn new() -> Self {
        Self::with_pages(MAX_MERGED_PAGES)
    }

    /// Allocates a zeroed buffer of `pages` pages (for engines configured
    /// with a larger merge window than the paper's default).
    pub fn with_pages(pages: usize) -> Self {
        Self {
            data: vec![0u8; pages.max(1) * PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Number of pages this buffer can hold.
    pub fn capacity_pages(&self) -> usize {
        self.data.len() / PAGE_SIZE
    }

    /// Mutable view of the first `n` pages, for the IO thread to read into.
    pub fn pages_mut(&mut self, n: usize) -> &mut [u8] {
        &mut self.data[..n * PAGE_SIZE]
    }

    /// Immutable view of the first `n` pages.
    pub fn pages(&self, n: usize) -> &[u8] {
        &self.data[..n * PAGE_SIZE]
    }
}

impl Default for IoBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// A filled buffer travelling from an IO thread to a scatter thread: the
/// buffer plus the global ids of the pages it holds, in order.
#[derive(Debug)]
pub struct FilledBuffer {
    /// The buffer holding the page data.
    pub buffer: IoBuffer,
    /// Global page ids of the pages in `buffer`, in frame order. Device
    /// reads produce consecutive *local* pages of one device (globally
    /// strided by the device count); buffers packed from page-cache hits
    /// may hold any ascending set of that device's pages. Consumers must
    /// only rely on `pages[i]` describing frame `i` — never on contiguity.
    pub pages: Vec<PageId>,
}

impl FilledBuffer {
    /// Page data for the `i`-th page in this buffer.
    pub fn page_data(&self, i: usize) -> &[u8] {
        &self.buffer.data[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]
    }

    /// Number of pages held.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }
}

/// The free/filled MPMC buffer queues shared by IO and scatter threads.
pub struct BufferPool {
    free: ArrayQueue<IoBuffer>,
    filled: SegQueue<FilledBuffer>,
    capacity: usize,
    pages_per_buffer: usize,
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers, all initially free, each
    /// holding [`MAX_MERGED_PAGES`] pages.
    pub fn new(capacity: usize) -> Self {
        Self::with_buffer_pages(capacity, MAX_MERGED_PAGES)
    }

    /// Creates a pool of `capacity` buffers of `pages_per_buffer` pages —
    /// buffers must be at least as large as the engine's merge window.
    pub fn with_buffer_pages(capacity: usize, pages_per_buffer: usize) -> Self {
        let capacity = capacity.max(1);
        let pages_per_buffer = pages_per_buffer.max(1);
        let free = ArrayQueue::new(capacity);
        for _ in 0..capacity {
            // A fresh queue with `capacity` slots accepts exactly `capacity`
            // pushes, so the push cannot fail; the binding makes overflow
            // drop the buffer instead of panicking.
            let _ = free.push(IoBuffer::with_pages(pages_per_buffer));
        }
        Self {
            free,
            filled: SegQueue::new(),
            capacity,
            pages_per_buffer,
        }
    }

    /// Creates a pool sized so that its buffers total roughly `bytes`.
    pub fn with_bytes(bytes: usize) -> Self {
        Self::new(bytes / (MAX_MERGED_PAGES * PAGE_SIZE))
    }

    /// [`with_bytes`](Self::with_bytes) with a custom buffer size in pages.
    pub fn with_bytes_and_pages(bytes: usize, pages_per_buffer: usize) -> Self {
        let pages_per_buffer = pages_per_buffer.max(1);
        Self::with_buffer_pages(bytes / (pages_per_buffer * PAGE_SIZE), pages_per_buffer)
    }

    /// Pages each buffer holds.
    pub fn pages_per_buffer(&self) -> usize {
        self.pages_per_buffer
    }

    /// Number of buffers owned by the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tries to take a free buffer without blocking.
    pub fn try_acquire_free(&self) -> Option<IoBuffer> {
        self.free.pop()
    }

    /// Takes a free buffer, backing off (spin → yield) until one is
    /// available. IO threads block here when scatter falls behind.
    pub fn acquire_free(&self) -> IoBuffer {
        let backoff = Backoff::new();
        loop {
            if let Some(buf) = self.free.pop() {
                return buf;
            }
            backoff.snooze();
        }
    }

    /// Returns a drained buffer to the free queue (Figure 5, step 7).
    pub fn release(&self, buffer: IoBuffer) {
        // The pool created every buffer, so the queue can never overflow.
        let _ = self.free.push(buffer);
    }

    /// Publishes a filled buffer for scatter threads (step 4).
    pub fn push_filled(&self, filled: FilledBuffer) {
        self.filled.push(filled);
    }

    /// Takes the next filled buffer, if any (step 5).
    pub fn pop_filled(&self) -> Option<FilledBuffer> {
        self.filled.pop()
    }

    /// Number of buffers currently waiting in the filled queue.
    pub fn filled_len(&self) -> usize {
        self.filled.len()
    }

    /// Restores the pool to its freshly-constructed state so it can be
    /// recycled into a later job: any buffers stranded in the filled queue
    /// (e.g. after an IO error aborted scatter early) move back to the free
    /// queue. Must only be called while no IO or scatter thread is using
    /// the pool.
    pub fn recycle(&self) {
        while let Some(filled) = self.filled.pop() {
            self.release(filled.buffer);
        }
    }

    /// Whether every buffer is back in the free queue — i.e. the pool is
    /// safe to hand to the next job. A pool that lost buffers (a panicking
    /// job dropped some on its stack) reports `false` and should be
    /// discarded rather than reused.
    pub fn is_intact(&self) -> bool {
        self.free.len() == self.capacity
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("free", &self.free.len())
            .field("filled", &self.filled.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_starts_full_of_free_buffers() {
        let pool = BufferPool::new(4);
        let mut held = Vec::new();
        for _ in 0..4 {
            held.push(pool.try_acquire_free().expect("buffer available"));
        }
        assert!(pool.try_acquire_free().is_none());
        for b in held {
            pool.release(b);
        }
        assert!(pool.try_acquire_free().is_some());
    }

    #[test]
    fn with_bytes_sizes_pool() {
        let pool = BufferPool::with_bytes(64 * MAX_MERGED_PAGES * PAGE_SIZE);
        assert_eq!(pool.capacity(), 64);
    }

    #[test]
    fn filled_round_trip_preserves_data_and_pages() {
        let pool = BufferPool::new(1);
        let mut buf = pool.try_acquire_free().unwrap();
        buf.pages_mut(2)[0] = 0xAB;
        buf.pages_mut(2)[PAGE_SIZE] = 0xCD;
        pool.push_filled(FilledBuffer {
            buffer: buf,
            pages: vec![10, 14],
        });
        let filled = pool.pop_filled().unwrap();
        assert_eq!(filled.num_pages(), 2);
        assert_eq!(filled.pages, vec![10, 14]);
        assert_eq!(filled.page_data(0)[0], 0xAB);
        assert_eq!(filled.page_data(1)[0], 0xCD);
        pool.release(filled.buffer);
    }

    #[test]
    fn recycle_drains_stranded_filled_buffers() {
        let pool = BufferPool::new(2);
        let buf = pool.try_acquire_free().unwrap();
        pool.push_filled(FilledBuffer {
            buffer: buf,
            pages: vec![3],
        });
        assert!(!pool.is_intact());
        pool.recycle();
        assert!(pool.is_intact());
        assert_eq!(pool.filled_len(), 0);
        // A buffer lost outside the pool keeps it non-intact even after
        // recycling.
        let lost = pool.try_acquire_free().unwrap();
        pool.recycle();
        assert!(!pool.is_intact());
        pool.release(lost);
        assert!(pool.is_intact());
    }

    #[test]
    fn producer_consumer_recycles_buffers() {
        // 2 buffers, 64 messages: recycling must keep both sides going.
        let pool = blaze_sync::Arc::new(BufferPool::new(2));
        let producer_pool = pool.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..64u64 {
                let mut buf = producer_pool.acquire_free();
                buf.pages_mut(1)[0] = i as u8;
                producer_pool.push_filled(FilledBuffer {
                    buffer: buf,
                    pages: vec![i],
                });
            }
        });
        let mut seen = Vec::new();
        while seen.len() < 64 {
            if let Some(f) = pool.pop_filled() {
                seen.push(f.pages[0]);
                pool.release(f.buffer);
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }
}
