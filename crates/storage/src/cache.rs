//! Sharded clock (second-chance) page cache for the IO path.
//!
//! The published Blaze re-fetches every frontier page from the SSD array on
//! every iteration; the paper names smarter reuse as future work after
//! losing to FlashGraph's SAFS page cache on the high-locality sk2005 graph
//! (Section V-B). This module implements that future work as a cache of
//! 4 KiB *frames* keyed by global [`PageId`], sitting between the engine's
//! per-device IO workers and [`StripedStorage`](crate::StripedStorage):
//!
//! * **Clock eviction.** Each frame carries a reference bit; [`get`] sets
//!   it, [`insert`] sweeps a clock hand that clears set bits and evicts the
//!   first frame found unreferenced. Pages touched since the last sweep get
//!   a second chance; one-shot scan pages are evicted after a single lap.
//!   Unlike an LRU list, a hit mutates only its own frame's bit — there is
//!   no recency list to maintain.
//! * **Sharding.** Frames are split over up to 16 independently-locked
//!   shards selected by a Fibonacci hash of the page id, so the per-device
//!   IO workers rarely contend on one mutex. Each shard runs its own clock
//!   hand over its own frames; the clock hand and the frames it sweeps are
//!   all state *under the shard mutex*, which is what keeps the algorithm
//!   model-checkable (`tests/loom_cache.rs`) without any ordering-sensitive
//!   atomics on the hot path.
//! * **Heat-informed admission.** When the graph was written with a
//!   degree-aware layout (`blaze-graph`'s layout module), the leading pages
//!   of the stream hold the hub vertices. [`set_hot_region`] marks that
//!   prefix hot: a hot page entering the cache takes a *second-chance
//!   credit* — it starts with its reference bit set, so the first sweep lap
//!   spares it — as long as the shard's protected budget (a configurable
//!   fraction of its frames) has credits left. Cold fills and graphs
//!   without a layout are admitted exactly as before.
//! * **Byte budget.** Capacity is configured in bytes
//!   (`EngineOptions::cache_bytes`); a budget of zero bypasses the cache
//!   entirely — every lookup misses and nothing is retained, leaving the IO
//!   path byte-for-byte identical to the uncached engine.
//!
//! Frame data is handed out as `Arc<[u8]>` clones taken under the shard
//! lock: eviction merely drops the shard's reference, so a reader holding a
//! frame keeps valid data even if the page is evicted the next instant —
//! the frame refcount (the `Arc` strong count) is what guarantees no reader
//! ever observes a recycled frame.
//!
//! [`get`]: PageCache::get
//! [`insert`]: PageCache::insert
//! [`set_hot_region`]: PageCache::set_hot_region

use std::collections::HashMap;

use blaze_sync::atomic::{AtomicU64, Ordering};
use blaze_sync::{Arc, Mutex};

use blaze_types::{PageId, PAGE_SIZE};

/// Most shards the cache will split into; bounded so tiny caches keep
/// meaningfully sized shards.
const MAX_SHARDS: usize = 16;

/// Frames below which a shard is not worth splitting off.
const MIN_FRAMES_PER_SHARD: usize = 64;

/// Counter snapshot returned by [`PageCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Resident pages displaced by the clock sweep.
    pub evictions: u64,
    /// Hot-region fills admitted with an upfront second-chance credit.
    pub hot_admits: u64,
}

/// What one [`PageCache::insert`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// A resident page was displaced to make room.
    pub evicted: bool,
    /// The fill was admitted with a hot-region second-chance credit.
    pub hot_admitted: bool,
}

/// One resident page: its id, its clock reference bit, and the frame data.
#[derive(Debug)]
struct Frame {
    page: PageId,
    /// Second-chance bit: set by [`PageCache::get`], cleared (and acted on)
    /// by the clock sweep in [`PageCache::insert`]. Plain `bool` — every
    /// access happens under the owning shard's mutex.
    referenced: bool,
    /// Whether this frame holds one of the shard's hot-region credits
    /// (released back to the budget when the frame is evicted).
    hot_credit: bool,
    data: Arc<[u8]>,
}

/// The state of one shard, entirely under its mutex: the resident map, the
/// frame table, and this shard's clock hand.
#[derive(Debug, Default)]
struct ShardState {
    /// Resident pages → index into `frames`. Checked on every insert, so a
    /// page can never occupy two frames.
    map: HashMap<PageId, usize>,
    frames: Vec<Frame>,
    /// Clock hand: index of the next frame the eviction sweep examines.
    /// Only meaningful once `frames` is full. Protected by the shard mutex,
    /// so sweeps from different inserters serialize and the hand needs no
    /// atomic ordering argument.
    hand: usize,
    /// Hot-region credits currently held by resident frames. Bounded by the
    /// shard's `hot_budget`; mutated only under the shard mutex.
    hot_credits: usize,
}

#[derive(Debug)]
struct Shard {
    state: Mutex<ShardState>,
    /// Frame budget of this shard (fixed at construction).
    capacity: usize,
    /// Most frames allowed to hold a hot-region credit at once (the
    /// protected budget; see [`PageCache::set_hot_region`]).
    hot_budget: usize,
}

/// A sharded clock (second-chance) cache of 4 KiB pages.
///
/// All methods are safe to call concurrently from any number of threads;
/// see the module docs for the locking discipline.
#[derive(Debug)]
pub struct PageCache {
    shards: Vec<Shard>,
    capacity_pages: usize,
    /// Global pages below this id belong to the graph's hot (hub) region
    /// and are admitted with an upfront second-chance credit while the
    /// shard's protected budget lasts. 0 disables heat-informed admission.
    /// Plain field: set once by [`set_hot_region`](Self::set_hot_region)
    /// (which takes `&mut self`) before the cache is shared.
    hot_pages: PageId,
    // sync-audit: Relaxed — the counters below are monotonic statistics,
    // never used for synchronization; readers either run after the job
    // completed (trace assembly) or tolerate a stale snapshot (progress
    // reporting). Every load/fetch_add on them inherits this argument.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hot_admits: AtomicU64,
}

impl PageCache {
    /// Creates a cache with a byte budget of `cache_bytes`, i.e.
    /// `cache_bytes / PAGE_SIZE` frames. A budget below one page (including
    /// zero) disables storage entirely: every lookup misses and inserts are
    /// dropped, so the IO path behaves exactly as if no cache existed.
    pub fn new(cache_bytes: usize) -> Self {
        Self::with_capacity_pages(cache_bytes / PAGE_SIZE)
    }

    /// Creates a cache holding at most `pages` frames.
    pub fn with_capacity_pages(pages: usize) -> Self {
        let num_shards = match pages {
            0 => 1,
            p => (p / MIN_FRAMES_PER_SHARD)
                .clamp(1, MAX_SHARDS)
                .next_power_of_two(),
        };
        let base = pages / num_shards;
        let remainder = pages % num_shards;
        let shards = (0..num_shards)
            .map(|i| Shard {
                state: Mutex::new(ShardState::default()),
                capacity: base + usize::from(i < remainder),
                hot_budget: 0,
            })
            .collect();
        Self {
            shards,
            capacity_pages: pages,
            hot_pages: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hot_admits: AtomicU64::new(0),
        }
    }

    /// Declares pages `0..hot_pages` hot and reserves `fraction` of each
    /// shard's frames as the protected budget for their credits. Called
    /// once, before the cache is shared (hence `&mut self` — no locking
    /// argument needed); a zero `hot_pages` or `fraction` leaves admission
    /// exactly as it was before heat awareness existed.
    pub fn set_hot_region(&mut self, hot_pages: PageId, fraction: f64) {
        self.hot_pages = hot_pages;
        let fraction = fraction.clamp(0.0, 1.0);
        for shard in &mut self.shards {
            shard.hot_budget = (shard.capacity as f64 * fraction) as usize;
        }
    }

    /// Upper page id bound of the configured hot region (0 = none).
    pub fn hot_pages(&self) -> PageId {
        self.hot_pages
    }

    /// Total frame budget in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Byte budget (`capacity_pages * PAGE_SIZE`).
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_pages * PAGE_SIZE
    }

    /// Number of independently locked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fibonacci-hash shard selection: striped global pages (strided by the
    /// device count) must not alias into one shard, so the raw id is mixed
    /// before taking the high bits.
    fn shard_of(&self, page: PageId) -> &Shard {
        let mixed = page.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed >> 32) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Looks `page` up. On a hit the frame's reference bit is set (granting
    /// it a second chance against the clock sweep) and a clone of the frame
    /// data is returned; the clone stays valid even if the page is evicted
    /// immediately afterwards.
    pub fn get(&self, page: PageId) -> Option<Arc<[u8]>> {
        let shard = self.shard_of(page);
        let mut state = shard.state.lock();
        let Some(&slot) = state.map.get(&page) else {
            drop(state);
            self.misses.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
            return None;
        };
        let frame = &mut state.frames[slot];
        frame.referenced = true;
        let data = frame.data.clone();
        drop(state);
        self.hits.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        Some(data)
    }

    /// Inserts `page`, evicting one resident page via the clock sweep if
    /// the shard is full. The returned [`InsertOutcome`] reports whether a
    /// resident page was displaced and whether the fill received a
    /// hot-region admission credit.
    ///
    /// Inserting a page that is already resident refreshes its data and
    /// reference bit in place — a page never occupies two frames, no matter
    /// how many IO workers race to fill it.
    pub fn insert(&self, page: PageId, data: Arc<[u8]>) -> InsertOutcome {
        let shard = self.shard_of(page);
        if shard.capacity == 0 {
            return InsertOutcome::default();
        }
        let mut state = shard.state.lock();
        if let Some(&slot) = state.map.get(&page) {
            let frame = &mut state.frames[slot];
            frame.data = data;
            frame.referenced = true;
            return InsertOutcome::default();
        }
        if state.frames.len() < shard.capacity {
            let hot = self.grant_hot_credit(shard, page, &mut state);
            let slot = state.frames.len();
            state.frames.push(Frame {
                page,
                // Fresh cold fills start unreferenced: a page only earns
                // its second chance by being *re*-used, so one-shot scan
                // pages drain out after a single lap of the hand. Hot-region
                // fills carrying a credit start referenced instead.
                referenced: hot,
                hot_credit: hot,
                data,
            });
            state.map.insert(page, slot);
            drop(state);
            if hot {
                self.hot_admits.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
            }
            return InsertOutcome {
                evicted: false,
                hot_admitted: hot,
            };
        }
        // Clock sweep: clear reference bits until an unreferenced frame
        // turns up. Terminates within two laps — the first lap clears every
        // bit it passes.
        let victim = loop {
            let hand = state.hand;
            state.hand = (hand + 1) % shard.capacity;
            let frame = &mut state.frames[hand];
            if frame.referenced {
                frame.referenced = false;
            } else {
                break hand;
            }
        };
        let old_page = state.frames[victim].page;
        if state.frames[victim].hot_credit {
            // The displaced frame returns its credit to the budget before
            // the incoming page bids for one.
            state.hot_credits -= 1;
        }
        let hot = self.grant_hot_credit(shard, page, &mut state);
        state.map.remove(&old_page);
        state.map.insert(page, victim);
        state.frames[victim] = Frame {
            page,
            referenced: hot,
            hot_credit: hot,
            data,
        };
        drop(state);
        self.evictions.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        if hot {
            self.hot_admits.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        }
        InsertOutcome {
            evicted: true,
            hot_admitted: hot,
        }
    }

    /// Heat-informed admission: a hot-region page entering the cache takes
    /// a second-chance credit (enters with its reference bit pre-set, so
    /// the first sweep lap spares it) while the shard's protected budget
    /// has room. Runs under the shard mutex.
    fn grant_hot_credit(&self, shard: &Shard, page: PageId, state: &mut ShardState) -> bool {
        let grant = page < self.hot_pages && state.hot_credits < shard.hot_budget;
        if grant {
            state.hot_credits += 1;
        }
        grant
    }

    /// Current number of resident pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().map.len()).sum()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.state.lock().map.is_empty())
    }

    /// Counter snapshot since construction or the last [`reset_stats`].
    ///
    /// [`reset_stats`]: Self::reset_stats
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed), // sync-audit: stats counter; see struct field comment.
            misses: self.misses.load(Ordering::Relaxed), // sync-audit: stats counter; see struct field comment.
            evictions: self.evictions.load(Ordering::Relaxed), // sync-audit: stats counter; see struct field comment.
            hot_admits: self.hot_admits.load(Ordering::Relaxed), // sync-audit: stats counter; see struct field comment.
        }
    }

    /// Clears every counter [`stats`](Self::stats) reports (resident pages
    /// stay, as do any hot credits they hold).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        self.misses.store(0, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        self.evictions.store(0, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
        self.hot_admits.store(0, Ordering::Relaxed); // sync-audit: stats counter; see struct field comment.
    }

    /// Bytes held by resident page data (excludes bookkeeping).
    pub fn memory_bytes(&self) -> u64 {
        (self.len() * PAGE_SIZE) as u64
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn page(byte: u8) -> Arc<[u8]> {
        vec![byte; 8].into()
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = PageCache::with_capacity_pages(4);
        assert!(c.get(1).is_none());
        assert!(!c.insert(1, page(1)).evicted);
        assert_eq!(c.get(1).unwrap()[0], 1);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                hot_admits: 0
            }
        );
    }

    #[test]
    fn byte_budget_rounds_down_to_whole_frames() {
        assert_eq!(PageCache::new(0).capacity_pages(), 0);
        assert_eq!(PageCache::new(PAGE_SIZE - 1).capacity_pages(), 0);
        assert_eq!(PageCache::new(10 * PAGE_SIZE + 17).capacity_pages(), 10);
        assert_eq!(PageCache::new(1 << 20).capacity_bytes(), 1 << 20);
    }

    #[test]
    fn clock_gives_referenced_pages_a_second_chance() {
        let c = PageCache::with_capacity_pages(2);
        c.insert(1, page(1));
        c.insert(2, page(2));
        assert!(c.get(1).is_some()); // reference bit set on 1
        assert!(c.insert(3, page(3)).evicted); // sweep skips 1, evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn unreferenced_pages_drain_in_insertion_order() {
        let c = PageCache::with_capacity_pages(2);
        c.insert(1, page(1));
        c.insert(2, page(2));
        // Nothing referenced: the hand starts at frame 0, so 1 goes first.
        assert!(c.insert(3, page(3)).evicted);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn reinserting_existing_page_does_not_evict_others() {
        let c = PageCache::with_capacity_pages(2);
        c.insert(1, page(1));
        c.insert(2, page(2));
        assert!(!c.insert(2, page(22)).evicted); // update in place, no eviction
        assert!(c.get(1).is_some());
        assert_eq!(c.get(2).unwrap()[0], 22);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = PageCache::new(0);
        assert_eq!(c.insert(9, page(9)), InsertOutcome::default());
        assert!(c.get(9).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn heavy_reuse_stays_bounded() {
        let c = PageCache::with_capacity_pages(8);
        for round in 0..100u64 {
            for p in 0..16u64 {
                if c.get(p).is_none() {
                    c.insert(p, page(p as u8));
                }
            }
            assert!(c.len() <= 8, "round {round}: len {}", c.len());
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 1600);
        assert_eq!(s.evictions + 8, s.misses, "every miss fills a frame");
    }

    #[test]
    fn evicted_data_stays_valid_for_holders() {
        let c = PageCache::with_capacity_pages(1);
        c.insert(1, page(1));
        let held = c.get(1).unwrap();
        for p in 2..10u64 {
            c.insert(p, page(p as u8));
        }
        assert!(c.get(1).is_none(), "page 1 evicted");
        assert!(held.iter().all(|&b| b == 1), "holder's frame data intact");
    }

    #[test]
    fn sharding_scales_with_capacity_and_spreads_pages() {
        assert_eq!(PageCache::with_capacity_pages(4).num_shards(), 1);
        let big = PageCache::with_capacity_pages(4096);
        assert!(big.num_shards() > 1);
        assert!(big.num_shards() <= MAX_SHARDS);
        // Shard budgets sum to the total budget.
        assert_eq!(
            big.shards.iter().map(|s| s.capacity).sum::<usize>(),
            big.capacity_pages()
        );
        // Device-strided pages (the global ids one IO worker sees on an
        // 8-device array) must spread over shards, not alias into one.
        let mut counts = vec![0usize; big.num_shards()];
        for i in 0..1024u64 {
            let mixed = (i * 8).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            counts[(mixed >> 32) as usize & (big.num_shards() - 1)] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        assert!(max < 2 * min.max(1), "strided pages alias: {counts:?}");
    }

    #[test]
    fn full_cache_holds_exactly_capacity() {
        let c = PageCache::with_capacity_pages(256);
        for p in 0..1000u64 {
            c.insert(p, page(p as u8));
        }
        assert_eq!(c.len(), 256);
        assert_eq!(c.memory_bytes(), 256 * PAGE_SIZE as u64);
        assert_eq!(c.stats().evictions, 1000 - 256);
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let c = Arc::new(PageCache::with_capacity_pages(32));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let p = (t * 13 + i) % 64;
                    if c.get(p).is_none() {
                        c.insert(p, vec![p as u8; 4].into());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 32);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 4000);
    }

    #[test]
    fn reset_stats_clears_every_counter_and_keeps_residents() {
        let mut c = PageCache::with_capacity_pages(4);
        c.set_hot_region(16, 1.0);
        c.insert(1, page(1));
        c.get(1);
        c.get(2);
        assert!(c.stats().hot_admits > 0);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.get(1).is_some(), "resident pages survive a stats reset");
    }

    #[test]
    fn hot_pages_enter_with_a_second_chance() {
        let mut c = PageCache::with_capacity_pages(2);
        c.set_hot_region(1, 1.0); // only page 0 is hot
        assert!(c.insert(0, page(0)).hot_admitted);
        assert!(!c.insert(7, page(7)).hot_admitted);
        // Neither page has been *used*, but the hot fill's upfront credit
        // makes the sweep spare it and drain the cold page first.
        assert!(c.insert(8, page(8)).evicted);
        assert!(c.get(0).is_some(), "hot page survives the first sweep");
        assert!(c.get(7).is_none(), "cold page drained");
        assert_eq!(c.stats().hot_admits, 1);
    }

    #[test]
    fn hot_budget_bounds_outstanding_credits() {
        let mut c = PageCache::with_capacity_pages(4);
        c.set_hot_region(100, 0.5); // 2 of 4 frames may hold credits
        let admitted = (0..4u64)
            .filter(|&p| c.insert(p, page(p as u8)).hot_admitted)
            .count();
        assert_eq!(admitted, 2, "budget caps hot admissions");
        assert_eq!(c.stats().hot_admits, 2);
        // Evicting a credited frame returns its credit to the budget.
        for p in 4..40u64 {
            c.insert(p, page(p as u8));
        }
        assert!(
            c.stats().hot_admits > 2,
            "credits freed by eviction are re-granted"
        );
    }

    #[test]
    fn zero_fraction_or_no_hot_region_changes_nothing() {
        let mut with_region = PageCache::with_capacity_pages(2);
        with_region.set_hot_region(100, 0.0);
        let plain = PageCache::with_capacity_pages(2);
        for c in [&with_region, &plain] {
            c.insert(0, page(0));
            c.insert(1, page(1));
            // No credits granted: the plain second-chance order applies and
            // the oldest unreferenced frame drains first.
            assert!(c.insert(2, page(2)).evicted);
            assert!(c.get(0).is_none());
            assert_eq!(c.stats().hot_admits, 0);
        }
    }
}
