//! The [`BlockDevice`] trait: the only storage interface the engine sees.

use blaze_types::{BlazeError, Result, PAGE_SIZE};

use crate::stats::IoStats;

/// A page-granular block device.
///
/// Implementations must be safe to call concurrently from multiple threads
/// (Blaze issues one IO thread per device, but buffers may be written back
/// by any thread and the striped array fans requests out in parallel).
pub trait BlockDevice: Send + Sync {
    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// `buf.len()` must be a multiple of [`PAGE_SIZE`] and the range must lie
    /// within the device.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` starting at byte `offset`, extending the device if the
    /// implementation supports growth (files and memory devices do).
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()>;

    /// Current device length in bytes.
    fn len(&self) -> u64;

    /// Whether the device holds no data.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-device IO counters. Functional devices keep byte/request counts;
    /// [`SimDevice`](crate::SimDevice) additionally accumulates modeled
    /// service time.
    fn stats(&self) -> &IoStats;

    /// Reads `count` pages starting at `first_page` into `buf`.
    ///
    /// A `buf` that is not a whole number of pages is an [`BlazeError::Io`]
    /// in every build profile: a misaligned read would silently return a
    /// torn page, so release builds must fail loudly too.
    fn read_pages(&self, first_page: u64, buf: &mut [u8]) -> Result<()> {
        if !buf.len().is_multiple_of(PAGE_SIZE) {
            return Err(BlazeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "page read of {} bytes is not a multiple of the {PAGE_SIZE}-byte page",
                    buf.len()
                ),
            )));
        }
        self.read_at(first_page * PAGE_SIZE as u64, buf)
    }

    /// Reads pages like [`read_pages`](Self::read_pages), with a hint of how
    /// many requests were in flight on this device when the read was issued
    /// (including this one).
    ///
    /// Functional devices ignore the hint — bytes are bytes. Modeled devices
    /// ([`SimDevice`](crate::SimDevice)) use it to overlap the fixed
    /// per-request latency across the in-flight window, which is what turns
    /// queue depth into bandwidth on real SSDs.
    fn read_pages_at_depth(&self, first_page: u64, buf: &mut [u8], depth: u32) -> Result<()> {
        let _ = depth;
        self.read_pages(first_page, buf)
    }

    /// Number of whole pages on the device.
    fn num_pages(&self) -> u64 {
        self.len() / PAGE_SIZE as u64
    }
}
