//! The [`BlockDevice`] trait: the only storage interface the engine sees.

use blaze_types::{Result, PAGE_SIZE};

use crate::stats::IoStats;

/// A page-granular block device.
///
/// Implementations must be safe to call concurrently from multiple threads
/// (Blaze issues one IO thread per device, but buffers may be written back
/// by any thread and the striped array fans requests out in parallel).
pub trait BlockDevice: Send + Sync {
    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// `buf.len()` must be a multiple of [`PAGE_SIZE`] and the range must lie
    /// within the device.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `buf` starting at byte `offset`, extending the device if the
    /// implementation supports growth (files and memory devices do).
    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()>;

    /// Current device length in bytes.
    fn len(&self) -> u64;

    /// Whether the device holds no data.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-device IO counters. Functional devices keep byte/request counts;
    /// [`SimDevice`](crate::SimDevice) additionally accumulates modeled
    /// service time.
    fn stats(&self) -> &IoStats;

    /// Reads `count` pages starting at `first_page` into `buf`.
    fn read_pages(&self, first_page: u64, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len() % PAGE_SIZE, 0);
        self.read_at(first_page * PAGE_SIZE as u64, buf)
    }

    /// Number of whole pages on the device.
    fn num_pages(&self) -> u64 {
        self.len() / PAGE_SIZE as u64
    }
}
