//! Fault injection: a device wrapper that fails selected requests.
//!
//! Used by the test suites to verify that IO errors propagate cleanly out
//! of the multi-threaded engine pipeline instead of wedging or being
//! swallowed.

use blaze_sync::atomic::{AtomicU64, Ordering};

use blaze_types::{BlazeError, Result};

use crate::device::BlockDevice;
use crate::stats::IoStats;

/// Wraps a device and fails reads according to a policy.
#[derive(Debug)]
pub struct FaultyDevice<D> {
    inner: D,
    /// Fail every read whose (1-based) sequence number is a multiple of
    /// this value; 0 disables injection. Atomic so tests can heal (or
    /// break) a live device between waves of jobs.
    fail_every: AtomicU64,
    /// Fail all reads once this many reads have succeeded (u64::MAX
    /// disables).
    fail_after: u64,
    reads: AtomicU64,
    injected: AtomicU64,
}

impl<D: BlockDevice> FaultyDevice<D> {
    /// Fails every `n`-th read.
    pub fn fail_every(inner: D, n: u64) -> Self {
        Self {
            inner,
            fail_every: AtomicU64::new(n),
            fail_after: u64::MAX,
            reads: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Lets `n` reads succeed, then fails all subsequent reads.
    pub fn fail_after(inner: D, n: u64) -> Self {
        Self {
            inner,
            fail_every: AtomicU64::new(0),
            fail_after: n,
            reads: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Reconfigures the every-`n`-th policy on a live device (0 heals it).
    /// Lets tests fail one wave of jobs and let the next succeed.
    pub fn set_fail_every(&self, n: u64) {
        self.fail_every.store(n, Ordering::Relaxed); // sync-audit: fault-injection bookkeeping; exactness per-op, order irrelevant.
    }

    /// Number of injected failures so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed) // sync-audit: fault-injection bookkeeping; exactness per-op, order irrelevant.
    }

    fn should_fail(&self) -> bool {
        let seq = self.reads.fetch_add(1, Ordering::Relaxed) + 1; // sync-audit: fault-injection bookkeeping; exactness per-op, order irrelevant.
        let every = self.fail_every.load(Ordering::Relaxed); // sync-audit: fault-injection bookkeeping; exactness per-op, order irrelevant.
        let by_every = every > 0 && seq.is_multiple_of(every);
        let by_after = seq > self.fail_after;
        by_every || by_after
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDevice<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if self.should_fail() {
            self.injected.fetch_add(1, Ordering::Relaxed); // sync-audit: fault-injection bookkeeping; exactness per-op, order irrelevant.
            return Err(BlazeError::Io(std::io::Error::other(format!(
                "injected read failure at offset {offset}"
            ))));
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDevice;
    use blaze_types::PAGE_SIZE;

    #[test]
    fn fail_every_third_read() {
        let dev = FaultyDevice::fail_every(MemDevice::with_len(8 * PAGE_SIZE), 3);
        let mut buf = vec![0u8; PAGE_SIZE];
        let results: Vec<bool> = (0..6)
            .map(|p| dev.read_pages(p, &mut buf).is_ok())
            .collect();
        assert_eq!(results, vec![true, true, false, true, true, false]);
        assert_eq!(dev.injected_failures(), 2);
    }

    #[test]
    fn fail_after_threshold() {
        let dev = FaultyDevice::fail_after(MemDevice::with_len(8 * PAGE_SIZE), 2);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(dev.read_pages(0, &mut buf).is_ok());
        assert!(dev.read_pages(1, &mut buf).is_ok());
        assert!(dev.read_pages(2, &mut buf).is_err());
        assert!(dev.read_pages(3, &mut buf).is_err());
    }

    #[test]
    fn healing_a_live_device_stops_injection() {
        let dev = FaultyDevice::fail_every(MemDevice::with_len(8 * PAGE_SIZE), 1);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(dev.read_pages(0, &mut buf).is_err());
        dev.set_fail_every(0);
        assert!(dev.read_pages(0, &mut buf).is_ok());
        assert_eq!(dev.injected_failures(), 1);
    }

    #[test]
    fn writes_pass_through() {
        let dev = FaultyDevice::fail_every(MemDevice::new(), 1);
        assert!(dev.write_at(0, &[1, 2, 3]).is_ok());
        assert_eq!(dev.len(), 3);
    }
}
