//! File-backed block device using positioned reads.

use blaze_sync::atomic::{AtomicU64, Ordering};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

use blaze_types::{BlazeError, Result};

use crate::device::BlockDevice;
use crate::stats::IoStats;

/// A block device backed by a regular file.
///
/// Uses `pread`/`pwrite` (via [`FileExt`]) so concurrent requests need no
/// seek lock. This is the functional storage the out-of-core engine runs on;
/// wrap it in a [`SimDevice`](crate::SimDevice) to attach a performance
/// model.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
    len: AtomicU64,
    stats: IoStats,
}

impl FileDevice {
    /// Opens (or creates) the file at `path` for read/write access.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len: AtomicU64::new(len),
            stats: IoStats::new(),
        })
    }

    /// Opens an existing file read-only.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len: AtomicU64::new(len),
            stats: IoStats::new(),
        })
    }
}

impl BlockDevice for FileDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let len = self.len.load(Ordering::Acquire);
        if offset + buf.len() as u64 > len {
            return Err(BlazeError::OutOfRange {
                offset,
                len: buf.len() as u64,
                device_len: len,
            });
        }
        self.file.read_exact_at(buf, offset)?;
        self.stats.record_read(buf.len() as u64, false);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.file.write_all_at(buf, offset)?;
        let end = offset + buf.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_types::PAGE_SIZE;

    #[test]
    fn create_write_read_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("dev.bin");
        let dev = FileDevice::create(&path).unwrap();
        let page: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 253) as u8).collect();
        dev.write_at(0, &page).unwrap();
        dev.write_at(PAGE_SIZE as u64, &page).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        dev.read_pages(1, &mut out).unwrap();
        assert_eq!(out, page);
        assert_eq!(dev.num_pages(), 2);
    }

    #[test]
    fn reopen_sees_persisted_data() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("dev.bin");
        {
            let dev = FileDevice::create(&path).unwrap();
            dev.write_at(0, &[42u8; PAGE_SIZE]).unwrap();
        }
        let dev = FileDevice::open(&path).unwrap();
        assert_eq!(dev.len(), PAGE_SIZE as u64);
        let mut out = vec![0u8; PAGE_SIZE];
        dev.read_at(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 42));
    }

    #[test]
    fn read_past_end_errors() {
        let dir = tempfile::tempdir().unwrap();
        let dev = FileDevice::create(dir.path().join("d")).unwrap();
        dev.write_at(0, &[0u8; 16]).unwrap();
        let mut out = vec![0u8; 32];
        assert!(matches!(
            dev.read_at(0, &mut out),
            Err(BlazeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn concurrent_positioned_reads() {
        let dir = tempfile::tempdir().unwrap();
        let dev = blaze_sync::Arc::new(FileDevice::create(dir.path().join("d")).unwrap());
        for p in 0..4u64 {
            dev.write_at(p * PAGE_SIZE as u64, &vec![p as u8 + 1; PAGE_SIZE])
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dev = dev.clone();
            handles.push(std::thread::spawn(move || {
                let mut buf = vec![0u8; PAGE_SIZE];
                for i in 0..32 {
                    let p = (t + i) % 4;
                    dev.read_pages(p, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == p as u8 + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
