//! Cross-job scan sharing: single-flight coalescing of overlapping reads.
//!
//! N concurrent jobs walking the same disk-resident CSR issue N nearly
//! identical page-request streams, and the clock cache only helps when a
//! budget is configured and the working set fits. The [`FlightTable`]
//! attacks the problem at the IO pump instead, FlashGraph-style: the first
//! job to miss a page run becomes the **leader** and issues the device
//! read; every overlapping concurrent miss **subscribes** to the in-flight
//! read and is satisfied by fan-out of the leader's completed `Arc` page
//! frames. One device read, N consumers — aggregate device bytes stay
//! near 1× no matter how many tenants scan.
//!
//! # Protocol
//!
//! * [`FlightTable::plan`] splits a merged [`IoRequest`] against the
//!   device's registry, range-overlap aware: subranges already covered by
//!   a pending (or recently completed, see below) flight come back as
//!   [`FlightPart::Join`] tickets; uncovered subranges are registered as
//!   new flights and come back as [`FlightPart::Lead`] leases.
//! * The leader pumps its leased subranges through the IO backend exactly
//!   as an unshared read, then resolves each lease:
//!   [`FlightLease::complete`] publishes the per-page frames and wakes
//!   every subscriber; [`FlightLease::fail`] publishes the error instead.
//!   A lease dropped unresolved (leader panicked, or its job aborted on an
//!   earlier error before submitting) fails its flight — subscribers are
//!   never left parked on a read nobody is performing.
//! * Subscribers park on [`FlightTicket::wait`], a condvar handshake on the
//!   flight's outcome slot (model-checked in `tests/loom_flight.rs`).
//!   A failed flight delivers the leader's error message to every
//!   subscriber and is deregistered — never retained — so a second wave of
//!   jobs leads fresh reads instead of re-joining the corpse.
//!
//! # Retention window
//!
//! Instantaneous coalescing alone is brittle: two jobs a few microseconds
//! apart would share nothing once the first read completes. Each device
//! keeps a bounded FIFO ring of the last `retain` *successfully* completed
//! flights (GraphMP's shared-window idea), so a slightly-behind scan still
//! joins and is served immediately from the retained frames. The backing
//! store is read-only while jobs run, so retained frames never go stale.
//! `retain` bounds the memory: at most `retain` runs of at most the merge
//! window pages each, per device.
//!
//! # Locking
//!
//! Two lock classes, both leaves — neither is ever held while acquiring
//! the other (resolution publishes the outcome first, then fixes the
//! registry in a separate critical section):
//!
//! * `storage/flights` — one per-device registry mutex guarding the
//!   pending list and retention ring.
//! * `storage/outcome` — each flight's outcome slot plus its condvar; the
//!   subscriber-parking handshake.

use std::collections::VecDeque;

use blaze_sync::{Arc, Condvar, Mutex};
use blaze_types::{BlazeError, LocalPageId, Result, PAGE_SIZE};

use crate::request::IoRequest;

/// One 4 KiB page image fanned out from a leader to its subscribers (and,
/// when a cache is configured, into the cache — the same allocation serves
/// both).
pub type PageFrame = Arc<[u8]>;

/// Terminal (or not-yet-terminal) state of one flight.
enum Outcome {
    /// Leader still pumping; subscribers park on the condvar.
    Pending,
    /// Leader's read completed: one frame per page of the run.
    Ready(Vec<PageFrame>),
    /// Leader's read failed; the message is fanned out to every
    /// subscriber. (`BlazeError` is not `Clone`, so the flight stores the
    /// rendered message and each subscriber rebuilds an IO error.)
    Failed(String),
}

/// One in-flight (or retained) device read of a contiguous local page run.
struct Flight {
    first: LocalPageId,
    num_pages: u32,
    /// Submission sequence number of the leading job. Subscribers compare
    /// it against their own to decide between parking and a non-blocking
    /// probe: waiting only on *older* leaders keeps the cross-job wait
    /// graph acyclic (see `FlightTicket::leader_seq`).
    leader_seq: u64,
    /// Outcome slot of the leader/subscriber handshake.
    outcome: Mutex<Outcome>,
    /// Signalled (notify_all) exactly once, when the outcome turns
    /// terminal.
    done: Condvar,
}

impl Flight {
    fn end(&self) -> LocalPageId {
        self.first + self.num_pages as u64
    }

    fn covers(&self, page: LocalPageId) -> bool {
        self.first <= page && page < self.end()
    }

    /// Publishes the terminal outcome and wakes every parked subscriber.
    fn resolve(&self, outcome: Outcome) {
        debug_assert!(!matches!(outcome, Outcome::Pending));
        let mut slot = self.outcome.lock();
        // First resolution wins; a lease can only resolve once, so a
        // second terminal write would be a protocol bug.
        debug_assert!(matches!(*slot, Outcome::Pending), "flight resolved twice");
        *slot = outcome;
        drop(slot);
        self.done.notify_all();
    }
}

/// Per-device registry: reads currently in flight plus the retention ring
/// of recently completed ones.
struct DeviceFlights {
    pending: Vec<Arc<Flight>>,
    /// FIFO of successfully completed flights, newest at the back; bounded
    /// by the table's `retain`.
    recent: VecDeque<Arc<Flight>>,
}

/// The scan-sharing registry: per-device single-flight tables consulted by
/// the engine's IO workers before any merged request reaches the backend.
pub struct FlightTable {
    /// One registry per device, indexed by `DeviceId`.
    flights: Vec<Mutex<DeviceFlights>>,
    /// Completed flights retained per device (0 = concurrent-only
    /// coalescing, no retention).
    retain: usize,
}

/// One piece of a planned request: either this job reads the subrange from
/// the device (and owes the table a resolution), or another job already is
/// (or just did) and this job waits for the fan-out.
pub enum FlightPart<'a> {
    /// This job is the leader for the lease's subrange.
    Lead(FlightLease<'a>),
    /// The subrange is covered by another job's flight; wait on the
    /// ticket.
    Join(FlightTicket),
}

impl FlightTable {
    /// A table for `num_devices` devices retaining up to `retain`
    /// completed flights per device.
    pub fn new(num_devices: usize, retain: usize) -> Self {
        Self {
            flights: (0..num_devices)
                .map(|_| {
                    Mutex::new(DeviceFlights {
                        pending: Vec::new(),
                        recent: VecDeque::new(),
                    })
                })
                .collect(),
            retain,
        }
    }

    /// Number of devices the table was built for.
    pub fn num_devices(&self) -> usize {
        self.flights.len()
    }

    /// Splits `request` against `device`'s registry into lead and join
    /// parts, in ascending page order. Every page of the request lands in
    /// exactly one part; lead subranges are registered as pending flights
    /// before this returns, so concurrent planners of the same range join
    /// rather than double-read. `seq` is the planning job's submission
    /// sequence number, recorded on every flight it leads.
    pub fn plan(&self, device: usize, request: IoRequest, seq: u64) -> Vec<FlightPart<'_>> {
        let mut parts = Vec::new();
        let mut registry = self.flights[device].lock();
        let mut page = request.first_page;
        let end = request.end_page();
        while page < end {
            if let Some(flight) = find_covering(&registry, page) {
                // Extend the join as far as this same flight covers.
                let sub_end = flight.end().min(end);
                parts.push(FlightPart::Join(FlightTicket {
                    flight,
                    first: page,
                    num_pages: (sub_end - page) as u32,
                }));
                page = sub_end;
            } else {
                // Extend the lead until the next covered page (or the end
                // of the request) and register it so concurrent planners
                // subscribe instead of re-reading.
                let mut sub_end = page + 1;
                while sub_end < end && find_covering(&registry, sub_end).is_none() {
                    sub_end += 1;
                }
                let flight = Arc::new(Flight {
                    first: page,
                    num_pages: (sub_end - page) as u32,
                    leader_seq: seq,
                    outcome: Mutex::new(Outcome::Pending),
                    done: Condvar::new(),
                });
                registry.pending.push(flight.clone());
                parts.push(FlightPart::Lead(FlightLease {
                    table: self,
                    device,
                    flight,
                    resolved: false,
                }));
                page = sub_end;
            }
        }
        parts
    }

    /// Removes `flight` from `device`'s pending list; when `retain_it`,
    /// parks it in the retention ring instead of dropping it.
    fn deregister(&self, device: usize, flight: &Arc<Flight>, retain_it: bool) {
        let mut registry = self.flights[device].lock();
        registry.pending.retain(|f| !Arc::ptr_eq(f, flight));
        if retain_it && self.retain > 0 {
            registry.recent.push_back(flight.clone());
            while registry.recent.len() > self.retain {
                registry.recent.pop_front();
            }
        }
    }

    /// Pending (leader still reading) flights registered for `device`.
    /// Zero once every lease has been resolved — the "no leaked waiters"
    /// invariant the failure tests assert.
    pub fn pending_len(&self, device: usize) -> usize {
        self.flights[device].lock().pending.len()
    }

    /// Completed flights currently retained for `device`.
    pub fn recent_len(&self, device: usize) -> usize {
        self.flights[device].lock().recent.len()
    }
}

impl std::fmt::Debug for FlightTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightTable")
            .field("devices", &self.flights.len())
            .field("retain", &self.retain)
            .finish()
    }
}

/// Scans the registry for a flight covering `page`: the retention ring
/// first (newest first — those are already complete, so joining them never
/// waits), then the pending list.
fn find_covering(registry: &DeviceFlights, page: LocalPageId) -> Option<Arc<Flight>> {
    registry
        .recent
        .iter()
        .rev()
        .chain(registry.pending.iter())
        .find(|f| f.covers(page))
        .cloned()
}

/// The leader's obligation for one registered flight: read the subrange
/// from the device and [`complete`](Self::complete) with the page frames,
/// or [`fail`](Self::fail) with the error. Dropping the lease unresolved
/// fails the flight, so subscribers can never be stranded.
pub struct FlightLease<'a> {
    table: &'a FlightTable,
    device: usize,
    flight: Arc<Flight>,
    resolved: bool,
}

impl FlightLease<'_> {
    /// The device read this lease obliges the leader to perform.
    pub fn request(&self) -> IoRequest {
        IoRequest {
            first_page: self.flight.first,
            num_pages: self.flight.num_pages,
        }
    }

    /// Publishes the completed read — one [`PAGE_SIZE`] frame per page of
    /// the run — wakes every subscriber, and parks the flight in the
    /// retention ring.
    pub fn complete(mut self, frames: Vec<PageFrame>) {
        assert_eq!(
            frames.len(),
            self.flight.num_pages as usize,
            "flight completed with the wrong page count"
        );
        debug_assert!(frames.iter().all(|f| f.len() == PAGE_SIZE));
        self.resolved = true;
        self.flight.resolve(Outcome::Ready(frames));
        self.table.deregister(self.device, &self.flight, true);
    }

    /// Publishes the leader's read failure: every subscriber observes the
    /// message, and the flight is deregistered without retention so
    /// retries lead a fresh read instead of re-joining the failure.
    pub fn fail(mut self, message: &str) {
        self.resolved = true;
        self.flight.resolve(Outcome::Failed(message.to_string()));
        self.table.deregister(self.device, &self.flight, false);
    }
}

impl Drop for FlightLease<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            // Leader bailed before resolving (panic, or its job aborted on
            // an earlier error): fail the flight so subscribers wake with
            // an error instead of parking forever.
            self.flight
                .resolve(Outcome::Failed("leader abandoned the read".to_string()));
            self.table.deregister(self.device, &self.flight, false);
        }
    }
}

impl std::fmt::Debug for FlightLease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightLease")
            .field("device", &self.device)
            .field("request", &self.request())
            .finish()
    }
}

/// A subscriber's claim on a subrange of another job's flight.
pub struct FlightTicket {
    flight: Arc<Flight>,
    /// First local page of the claimed subrange.
    first: LocalPageId,
    num_pages: u32,
}

impl FlightTicket {
    /// First local page this ticket resolves to.
    pub fn first_page(&self) -> LocalPageId {
        self.first
    }

    /// Pages this ticket resolves to.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Submission sequence number of the job leading this flight. A
    /// subscriber may park ([`wait`](Self::wait)) only when the leader is
    /// strictly *older* than itself (smaller seq); for younger leaders it
    /// must [`try_wait`](Self::try_wait) and fall back to its own device
    /// read. Older jobs' pipeline roles run ahead of younger ones in
    /// every runtime worker's mailbox, so an older leader never depends
    /// on a younger subscriber — the wait graph stays acyclic and a
    /// parked subscriber is always woken.
    pub fn leader_seq(&self) -> u64 {
        self.flight.leader_seq
    }

    /// Parks until the flight's leader resolves it, then returns the
    /// claimed subrange's frames — or the leader's error, rebuilt as an IO
    /// error, if the read failed.
    pub fn wait(&self) -> Result<Vec<PageFrame>> {
        let mut slot = self.flight.outcome.lock();
        loop {
            match &*slot {
                Outcome::Pending => self.flight.done.wait(&mut slot),
                Outcome::Ready(frames) => return Ok(self.claim(frames)),
                Outcome::Failed(message) => return Err(leader_error(message)),
            }
        }
    }

    /// Non-blocking probe: the claimed frames (or the leader's error) if
    /// the flight already resolved, `None` while it is still pending.
    pub fn try_wait(&self) -> Option<Result<Vec<PageFrame>>> {
        match &*self.flight.outcome.lock() {
            Outcome::Pending => None,
            Outcome::Ready(frames) => Some(Ok(self.claim(frames))),
            Outcome::Failed(message) => Some(Err(leader_error(message))),
        }
    }

    /// The subrange of the flight's frames this ticket claims.
    fn claim(&self, frames: &[PageFrame]) -> Vec<PageFrame> {
        let skip = (self.first - self.flight.first) as usize;
        frames[skip..skip + self.num_pages as usize].to_vec()
    }
}

/// The error a subscriber observes when its leader's device read failed.
fn leader_error(message: &str) -> BlazeError {
    BlazeError::Io(std::io::Error::other(format!(
        "scan-share leader failed: {message}"
    )))
}

impl std::fmt::Debug for FlightTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightTicket")
            .field("first", &self.first)
            .field("num_pages", &self.num_pages)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn req(first: u64, num: u32) -> IoRequest {
        IoRequest {
            first_page: first,
            num_pages: num,
        }
    }

    fn frames(n: usize, fill: u8) -> Vec<PageFrame> {
        (0..n).map(|_| Arc::from(vec![fill; PAGE_SIZE])).collect()
    }

    /// Pulls the single lease out of a plan expected to be lead-only.
    fn sole_lease(mut parts: Vec<FlightPart<'_>>) -> FlightLease<'_> {
        assert_eq!(parts.len(), 1);
        match parts.pop().unwrap() {
            FlightPart::Lead(lease) => lease,
            FlightPart::Join(_) => panic!("expected a lead part"),
        }
    }

    fn sole_ticket(mut parts: Vec<FlightPart<'_>>) -> FlightTicket {
        assert_eq!(parts.len(), 1);
        match parts.pop().unwrap() {
            FlightPart::Join(ticket) => ticket,
            FlightPart::Lead(_) => panic!("expected a join part"),
        }
    }

    #[test]
    fn uncovered_request_leads_the_whole_run() {
        let table = FlightTable::new(2, 4);
        let lease = sole_lease(table.plan(0, req(8, 4), 0));
        assert_eq!(lease.request(), req(8, 4));
        assert_eq!(table.pending_len(0), 1);
        assert_eq!(table.pending_len(1), 0, "devices are independent");
        lease.complete(frames(4, 0xAB));
        assert_eq!(table.pending_len(0), 0);
        assert_eq!(table.recent_len(0), 1);
    }

    #[test]
    fn concurrent_miss_joins_the_pending_flight() {
        let table = FlightTable::new(1, 4);
        let lease = sole_lease(table.plan(0, req(0, 4), 0));
        let ticket = sole_ticket(table.plan(0, req(0, 4), 0));
        assert_eq!(table.pending_len(0), 1, "join registers nothing new");
        let published = frames(4, 0x5A);
        lease.complete(published.clone());
        let got = ticket.wait().unwrap();
        assert_eq!(got.len(), 4);
        for (a, b) in got.iter().zip(&published) {
            assert!(Arc::ptr_eq(a, b), "fan-out shares frames, no copy");
        }
    }

    #[test]
    fn partial_overlap_splits_into_lead_join_lead() {
        let table = FlightTable::new(1, 4);
        let mid = sole_lease(table.plan(0, req(4, 4), 0)); // covers [4, 8)
        let parts = table.plan(0, req(2, 10), 0); // wants [2, 12)
        let shape: Vec<String> = parts
            .iter()
            .map(|p| match p {
                FlightPart::Lead(l) => format!(
                    "lead[{},{})",
                    l.request().first_page,
                    l.request().end_page()
                ),
                FlightPart::Join(t) => format!(
                    "join[{},{})",
                    t.first_page(),
                    t.first_page() + t.num_pages() as u64
                ),
            })
            .collect();
        assert_eq!(shape, vec!["lead[2,4)", "join[4,8)", "lead[8,12)"]);
        assert_eq!(table.pending_len(0), 3);
        drop(parts);
        mid.complete(frames(4, 1));
        assert_eq!(table.pending_len(0), 0, "dropped leases self-clean");
    }

    #[test]
    fn retained_flight_serves_a_late_arrival() {
        let table = FlightTable::new(1, 4);
        sole_lease(table.plan(0, req(16, 2), 0)).complete(frames(2, 0x77));
        // The leader is long gone; a late scan still joins the retained
        // frames and is served without waiting.
        let ticket = sole_ticket(table.plan(0, req(16, 2), 0));
        let got = ticket.wait().unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|f| f[0] == 0x77));
    }

    #[test]
    fn failed_leader_propagates_and_clears_the_flight() {
        let table = FlightTable::new(1, 4);
        let lease = sole_lease(table.plan(0, req(0, 3), 0));
        let ticket = sole_ticket(table.plan(0, req(0, 3), 0));
        lease.fail("device exploded");
        let err = ticket.wait().unwrap_err();
        assert!(
            err.to_string().contains("device exploded"),
            "subscriber sees the leader's error: {err}"
        );
        assert_eq!(table.pending_len(0), 0, "failure deregisters the flight");
        assert_eq!(table.recent_len(0), 0, "failures are never retained");
        // A retry is not wedged: the same range leads a fresh read.
        let retry = sole_lease(table.plan(0, req(0, 3), 0));
        retry.complete(frames(3, 9));
        assert_eq!(table.recent_len(0), 1);
    }

    #[test]
    fn dropped_lease_fails_its_subscribers() {
        let table = FlightTable::new(1, 4);
        let lease = sole_lease(table.plan(0, req(0, 2), 0));
        let ticket = sole_ticket(table.plan(0, req(0, 2), 0));
        drop(lease); // leader aborted before submitting
        let err = ticket.wait().unwrap_err();
        assert!(err.to_string().contains("leader abandoned"));
        assert_eq!(table.pending_len(0), 0);
    }

    #[test]
    fn retention_ring_is_bounded_fifo() {
        let table = FlightTable::new(1, 2);
        for first in [0u64, 10, 20] {
            sole_lease(table.plan(0, req(first, 2), 0)).complete(frames(2, first as u8));
        }
        assert_eq!(table.recent_len(0), 2);
        // The oldest run fell out of the ring: a new scan of it leads.
        assert!(matches!(
            table.plan(0, req(0, 2), 0)[0],
            FlightPart::Lead(_)
        ));
        // The newer runs are still served.
        assert!(matches!(
            table.plan(0, req(20, 2), 0)[0],
            FlightPart::Join(_)
        ));
    }

    #[test]
    fn zero_retention_coalesces_concurrent_misses_only() {
        let table = FlightTable::new(1, 0);
        sole_lease(table.plan(0, req(0, 4), 0)).complete(frames(4, 1));
        assert_eq!(table.recent_len(0), 0);
        assert!(matches!(
            table.plan(0, req(0, 4), 0)[0],
            FlightPart::Lead(_)
        ));
    }

    #[test]
    fn try_wait_probes_without_parking_and_reports_the_leader_seq() {
        let table = FlightTable::new(1, 4);
        let lease = sole_lease(table.plan(0, req(0, 4), 7));
        let ticket = sole_ticket(table.plan(0, req(1, 2), 3));
        assert_eq!(ticket.leader_seq(), 7);
        assert!(ticket.try_wait().is_none());
        lease.complete(frames(4, 0x55));
        let got = ticket.try_wait().expect("resolved").expect("success");
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|f| f[0] == 0x55));
    }

    #[test]
    fn subscriber_parks_until_the_leader_completes() {
        let table = Arc::new(FlightTable::new(1, 4));
        let lease_table = table.clone();
        blaze_sync::thread::scope(|s| {
            let lease = sole_lease(lease_table.plan(0, req(0, 4), 0));
            let waiter = s.spawn(|| {
                let ticket = sole_ticket(table.plan(0, req(0, 4), 0));
                ticket.wait().unwrap()
            });
            // Let the waiter reach the condvar park with high probability
            // before publishing; loom_flight.rs checks the race exhaustively.
            std::thread::sleep(std::time::Duration::from_millis(10));
            lease.complete(frames(4, 0x42));
            let got = waiter.join().unwrap();
            assert!(got.iter().all(|f| f[0] == 0x42));
        });
    }
}
