//! Storage substrate for Blaze: block devices, device simulation, RAID-0
//! striping, IO-request merging, and IO buffer pools.
//!
//! The paper evaluates Blaze on Intel Optane and NAND SSDs. This crate
//! provides the same abstractions against simulated hardware:
//!
//! * [`BlockDevice`] — positioned page reads/writes, the only interface the
//!   engine sees.
//! * [`MemDevice`] / [`FileDevice`] — functional backing stores (RAM / a
//!   plain file).
//! * [`SimDevice`] — wraps any device with a calibrated service-time model
//!   ([`DeviceProfile`]) and per-request accounting, so benches can report
//!   modeled bandwidth for the device generations of Table I.
//! * [`StripedStorage`] — page-interleaved (RAID-0) striping over N devices,
//!   Blaze's topology-agnostic partitioning (Section IV-E).
//! * [`merge_pages`] — merges at most [`MAX_MERGED_PAGES`] contiguous pages
//!   per request and never merges across gaps (Section IV-C).
//! * [`IoBackend`] — submission-queue / completion-queue IO engines
//!   ([`SyncBackend`] depth-1 blocking, [`ThreadedBackend`] deep-queue with
//!   out-of-order completions), the reproduction's stand-in for the paper's
//!   per-SSD libaio thread (Section IV-C).
//! * [`BufferPool`] — fixed set of IO buffers recycled through MPMC
//!   free/filled queues (Figure 5, steps 3–7).
//! * [`PageCache`] — sharded clock (second-chance) cache of 4 KiB frames
//!   consulted by the IO workers before requests are merged; a departure
//!   from the paper, which re-reads every frontier page (Section V-B).
//!
//! [`MAX_MERGED_PAGES`]: blaze_types::MAX_MERGED_PAGES

pub mod backend;
pub mod buffer;
pub mod cache;
pub mod device;
pub mod faulty;
pub mod file;
pub mod flight;
pub mod mem;
pub mod profile;
pub mod recorder;
pub mod request;
pub mod sim;
pub mod stats;
pub mod stripe;
#[cfg(feature = "io-uring")]
pub mod uring;

pub use backend::{Completion, IoBackend, IoBackendKind, SyncBackend, ThreadedBackend};
pub use buffer::{BufferPool, FilledBuffer, IoBuffer};
pub use cache::{CacheStats, InsertOutcome, PageCache};
pub use device::BlockDevice;
pub use faulty::FaultyDevice;
pub use file::FileDevice;
pub use flight::{FlightLease, FlightPart, FlightTable, FlightTicket, PageFrame};
pub use mem::MemDevice;
pub use profile::{AccessPattern, DeviceProfile};
pub use recorder::RecordingDevice;
pub use request::{merge_pages, IoRequest};
pub use sim::SimDevice;
pub use stats::{IoStats, JobIoStats};
pub use stripe::StripedStorage;
#[cfg(feature = "io-uring")]
pub use uring::UringBackend;
