//! In-memory block device.

use blaze_sync::RwLock;
use blaze_types::{BlazeError, Result};

use crate::device::BlockDevice;
use crate::stats::IoStats;

/// A block device backed by a growable in-memory byte vector.
///
/// Used in tests and benches where page contents matter but persistence does
/// not. Reads take the lock shared, so concurrent readers do not serialize.
#[derive(Debug, Default)]
pub struct MemDevice {
    data: RwLock<Vec<u8>>,
    stats: IoStats,
}

impl MemDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a device pre-sized to `len` zero bytes.
    pub fn with_len(len: usize) -> Self {
        Self {
            data: RwLock::new(vec![0; len]),
            stats: IoStats::new(),
        }
    }

    /// Creates a device holding a copy of `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            data: RwLock::new(data),
            stats: IoStats::new(),
        }
    }
}

impl BlockDevice for MemDevice {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.data.read();
        let end = offset + buf.len() as u64;
        if end > data.len() as u64 {
            return Err(BlazeError::OutOfRange {
                offset,
                len: buf.len() as u64,
                device_len: data.len() as u64,
            });
        }
        buf.copy_from_slice(&data[offset as usize..end as usize]);
        self.stats.record_read(buf.len() as u64, false);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        let mut data = self.data.write();
        let end = (offset + buf.len() as u64) as usize;
        if end > data.len() {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blaze_types::PAGE_SIZE;

    #[test]
    fn write_then_read_round_trips() {
        let dev = MemDevice::new();
        let page: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 251) as u8).collect();
        dev.write_at(0, &page).unwrap();
        dev.write_at(PAGE_SIZE as u64, &page).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        dev.read_at(PAGE_SIZE as u64, &mut out).unwrap();
        assert_eq!(out, page);
        assert_eq!(dev.len(), 2 * PAGE_SIZE as u64);
        assert_eq!(dev.num_pages(), 2);
    }

    #[test]
    fn sparse_write_zero_fills_gap() {
        let dev = MemDevice::new();
        dev.write_at(100, &[1, 2, 3]).unwrap();
        let mut out = vec![9u8; 103];
        dev.read_at(0, &mut out).unwrap();
        assert!(out[..100].iter().all(|&b| b == 0));
        assert_eq!(&out[100..], &[1, 2, 3]);
    }

    #[test]
    fn read_past_end_errors() {
        let dev = MemDevice::with_len(PAGE_SIZE);
        let mut out = vec![0u8; PAGE_SIZE];
        let err = dev.read_at(1, &mut out).unwrap_err();
        assert!(matches!(err, BlazeError::OutOfRange { .. }));
    }

    #[test]
    fn stats_track_ops() {
        let dev = MemDevice::with_len(4 * PAGE_SIZE);
        let mut buf = vec![0u8; PAGE_SIZE];
        dev.read_pages(0, &mut buf).unwrap();
        dev.read_pages(3, &mut buf).unwrap();
        assert_eq!(dev.stats().read_ops(), 2);
        assert_eq!(dev.stats().read_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn concurrent_reads_see_consistent_data() {
        let dev = blaze_sync::Arc::new(MemDevice::with_len(8 * PAGE_SIZE));
        for p in 0..8u64 {
            dev.write_at(p * PAGE_SIZE as u64, &vec![p as u8; PAGE_SIZE])
                .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let dev = dev.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..64u64 {
                    let p = (t + i) % 8;
                    let mut buf = vec![0u8; PAGE_SIZE];
                    dev.read_pages(p, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == p as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
