//! Device performance profiles for the SSD generations of Table I.
//!
//! A profile models read service time as `latency + bytes / bandwidth`, where
//! the bandwidth depends on whether the request continues the previous one
//! (sequential) or jumps (random). This two-parameter model is enough to
//! reproduce the paper's central hardware observation: NAND SSDs are ~3x
//! slower for random 4 KiB reads than sequential, while fast NVMe drives
//! (Optane, Z-NAND, V-NAND) are nearly symmetric.

/// Whether a request continues the previous request's byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// The request starts exactly where the previous one ended.
    Sequential,
    /// The request starts anywhere else.
    Random,
}

/// Performance model of one SSD.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable model name.
    pub name: String,
    /// Sustained sequential 4 KiB read bandwidth, bytes/second.
    pub seq_read_bw: f64,
    /// Sustained random 4 KiB read bandwidth, bytes/second.
    pub rand_read_bw: f64,
    /// Fixed per-request latency, nanoseconds. Models submission and device
    /// command overhead; dominates only for tiny queue depths.
    pub latency_ns: u64,
    /// Number of requests the device can service concurrently.
    pub queue_depth: u32,
}

impl DeviceProfile {
    /// Intel NAND SSD DC S3520 (2016): 386 MB/s sequential, 132 MB/s random
    /// 4 KiB reads — the classic 3x seq/rand asymmetry (Table I).
    pub fn nand_s3520() -> Self {
        Self {
            name: "Intel NAND SSD DC S3520 (2016)".to_string(),
            seq_read_bw: 386.0e6,
            rand_read_bw: 132.0e6,
            latency_ns: 90_000,
            queue_depth: 32,
        }
    }

    /// Intel Optane SSD DC P4800X (2017): 2550 MB/s sequential, 2360 MB/s
    /// random — the paper's primary Fast NVMe Drive (Table I).
    pub fn optane_p4800x() -> Self {
        Self {
            name: "Intel Optane SSD DC P4800X (2017)".to_string(),
            seq_read_bw: 2550.0e6,
            rand_read_bw: 2360.0e6,
            latency_ns: 10_000,
            queue_depth: 128,
        }
    }

    /// Samsung Z-NAND SZ983 (2018): 3400 MB/s sequential, 3072 MB/s random
    /// (Table I).
    pub fn znand_sz983() -> Self {
        Self {
            name: "Samsung Z-NAND SZ983 (2018)".to_string(),
            seq_read_bw: 3400.0e6,
            rand_read_bw: 3072.0e6,
            latency_ns: 12_000,
            queue_depth: 128,
        }
    }

    /// Samsung 980 Pro V-NAND (2020): 3500 MB/s sequential, 2827 MB/s random
    /// (Table I).
    pub fn vnand_980pro() -> Self {
        Self {
            name: "Samsung 980 Pro (2020)".to_string(),
            seq_read_bw: 3500.0e6,
            rand_read_bw: 2827.0e6,
            latency_ns: 20_000,
            queue_depth: 128,
        }
    }

    /// All four profiles of Table I, in the paper's row order.
    pub fn table1() -> Vec<Self> {
        vec![
            Self::nand_s3520(),
            Self::optane_p4800x(),
            Self::znand_sz983(),
            Self::vnand_980pro(),
        ]
    }

    /// Bandwidth for the given access pattern, bytes/second.
    pub fn bandwidth(&self, pattern: AccessPattern) -> f64 {
        match pattern {
            AccessPattern::Sequential => self.seq_read_bw,
            AccessPattern::Random => self.rand_read_bw,
        }
    }

    /// Modeled service time of one read request, nanoseconds.
    ///
    /// Service time is `latency/queue_depth + bytes/bandwidth`: with a full
    /// queue the fixed latency overlaps across outstanding requests, so the
    /// per-request share shrinks; the transfer term is the device's
    /// throughput limit and never overlaps.
    pub fn read_service_ns(&self, bytes: u64, pattern: AccessPattern) -> u64 {
        let latency_share = self.latency_ns as f64 / self.queue_depth as f64;
        let transfer = bytes as f64 / self.bandwidth(pattern) * 1e9;
        (latency_share + transfer) as u64
    }

    /// Modeled service time of one read request issued while `depth`
    /// requests (including this one) were in flight on the device.
    ///
    /// The fixed latency overlaps across the *actual* in-flight window, up
    /// to the device's own `queue_depth`, so deeper host queues shrink the
    /// per-request latency share until the device queue saturates. The
    /// transfer term is always charged at the random-read bandwidth:
    /// requests racing down a deep queue complete out of order, which
    /// defeats the readahead that makes shallow sequential streams faster —
    /// and pricing the deep path pessimistically also keeps the modeled
    /// time independent of completion order, so benches are reproducible.
    pub fn read_service_ns_at_depth(&self, bytes: u64, depth: u32) -> u64 {
        let overlapped = depth.clamp(1, self.queue_depth) as f64;
        let latency_share = self.latency_ns as f64 / overlapped;
        let transfer = bytes as f64 / self.rand_read_bw * 1e9;
        (latency_share + transfer) as u64
    }

    /// Effective throughput (bytes/second) for back-to-back requests of
    /// `bytes` with the given pattern — what a microbenchmark measures.
    pub fn effective_bandwidth(&self, bytes: u64, pattern: AccessPattern) -> f64 {
        let ns = self.read_service_ns(bytes, pattern).max(1);
        bytes as f64 / (ns as f64 / 1e9)
    }

    /// Ratio of random to sequential 4 KiB bandwidth; ~0.33 for NAND, ≥0.8
    /// for FNDs. Used to classify a drive as a Fast NVMe Drive.
    pub fn symmetry(&self) -> f64 {
        self.rand_read_bw / self.seq_read_bw
    }

    /// Whether the profile qualifies as a Fast NVMe Drive: near-symmetric
    /// random/sequential bandwidth (the property Blaze exploits).
    pub fn is_fnd(&self) -> bool {
        self.symmetry() >= 0.75
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_is_asymmetric_fnds_are_not() {
        assert!(!DeviceProfile::nand_s3520().is_fnd());
        assert!(DeviceProfile::optane_p4800x().is_fnd());
        assert!(DeviceProfile::znand_sz983().is_fnd());
        assert!(DeviceProfile::vnand_980pro().is_fnd());
    }

    #[test]
    fn nand_random_is_one_third_of_sequential() {
        let p = DeviceProfile::nand_s3520();
        let ratio = p.symmetry();
        assert!((0.30..0.40).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn optane_gap_is_within_ten_percent() {
        let p = DeviceProfile::optane_p4800x();
        assert!(p.symmetry() > 0.90, "symmetry {}", p.symmetry());
    }

    #[test]
    fn optane_beats_nand_by_paper_factors() {
        let nand = DeviceProfile::nand_s3520();
        let opt = DeviceProfile::optane_p4800x();
        let seq_gain = opt.seq_read_bw / nand.seq_read_bw;
        let rand_gain = opt.rand_read_bw / nand.rand_read_bw;
        // Paper: 6.6x sequential and 17.9x random improvement.
        assert!((6.0..7.5).contains(&seq_gain), "seq gain {seq_gain}");
        assert!((16.0..19.0).contains(&rand_gain), "rand gain {rand_gain}");
    }

    #[test]
    fn service_time_scales_with_bytes() {
        let p = DeviceProfile::optane_p4800x();
        let one = p.read_service_ns(4096, AccessPattern::Random);
        let four = p.read_service_ns(4 * 4096, AccessPattern::Random);
        assert!(four > one);
        // Four pages must be cheaper than four independent requests.
        assert!(four < 4 * one);
    }

    #[test]
    fn effective_bandwidth_approaches_profile_bandwidth_for_large_requests() {
        let p = DeviceProfile::optane_p4800x();
        let eff = p.effective_bandwidth(1 << 20, AccessPattern::Sequential);
        assert!(eff > 0.95 * p.seq_read_bw, "eff {eff}");
    }

    #[test]
    fn table1_has_four_rows() {
        assert_eq!(DeviceProfile::table1().len(), 4);
    }

    #[test]
    fn deeper_queues_shrink_service_time_until_saturation() {
        let p = DeviceProfile::optane_p4800x();
        let depths = [1u32, 4, 16, 32, 128];
        let times: Vec<u64> = depths
            .iter()
            .map(|&d| p.read_service_ns_at_depth(4 * 4096, d))
            .collect();
        assert!(
            times.windows(2).all(|w| w[1] <= w[0]),
            "service time must be non-increasing in depth: {times:?}"
        );
        assert!(times[0] > times[4], "QD1 pays the full latency");
        // Beyond the device's own queue depth, nothing more overlaps.
        assert_eq!(
            p.read_service_ns_at_depth(4096, p.queue_depth),
            p.read_service_ns_at_depth(4096, p.queue_depth * 4)
        );
        // Depth 0 is treated as 1, not a division blow-up.
        assert_eq!(
            p.read_service_ns_at_depth(4096, 0),
            p.read_service_ns_at_depth(4096, 1)
        );
    }
}
