//! A [`BlockDevice`] wrapper that records every read request, for tests
//! asserting the exact device request stream an engine produces.

use blaze_sync::Mutex;

use blaze_types::Result;

use crate::device::BlockDevice;
use crate::stats::IoStats;

/// One recorded read: `(byte_offset, len_bytes, depth_hint)`. The depth
/// hint is 1 for reads issued through the plain [`BlockDevice::read_at`]
/// path and the submitted in-flight depth for
/// [`read_pages_at_depth`](BlockDevice::read_pages_at_depth) traffic.
pub type RecordedRead = (u64, usize, u32);

/// Wraps a device and logs each read's offset, length, and depth hint in
/// arrival order. Writes pass through unrecorded.
///
/// Used by the IO-backend equivalence tests: the default engine
/// configuration must produce byte-for-byte the request stream of the
/// published blocking IO path, and deep-queue configurations must produce
/// the same request *multiset*.
pub struct RecordingDevice<D> {
    inner: D,
    log: Mutex<Vec<RecordedRead>>,
}

impl<D: BlockDevice> RecordingDevice<D> {
    /// Wraps `inner` with an empty log.
    pub fn new(inner: D) -> Self {
        Self {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// The reads recorded so far, in arrival order.
    pub fn read_log(&self) -> Vec<RecordedRead> {
        self.log.lock().clone()
    }

    /// Clears the log.
    pub fn clear_log(&self) {
        self.log.lock().clear();
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for RecordingDevice<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.log.lock().push((offset, buf.len(), 1));
        self.inner.read_at(offset, buf)
    }

    fn read_pages_at_depth(&self, first_page: u64, buf: &mut [u8], depth: u32) -> Result<()> {
        self.log
            .lock()
            .push((first_page * blaze_types::PAGE_SIZE as u64, buf.len(), depth));
        self.inner.read_pages_at_depth(first_page, buf, depth)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

impl<D: std::fmt::Debug> std::fmt::Debug for RecordingDevice<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingDevice")
            .field("inner", &self.inner)
            .field("recorded_reads", &self.log.lock().len())
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::mem::MemDevice;
    use blaze_types::PAGE_SIZE;

    #[test]
    fn logs_reads_in_order_with_depth_hints() {
        let dev = RecordingDevice::new(MemDevice::with_len(8 * PAGE_SIZE));
        let mut buf = vec![0u8; PAGE_SIZE];
        dev.write_at(0, &[1u8; PAGE_SIZE]).unwrap();
        dev.read_at(0, &mut buf).unwrap();
        dev.read_pages(2, &mut buf).unwrap();
        dev.read_pages_at_depth(5, &mut buf, 9).unwrap();
        assert_eq!(
            dev.read_log(),
            vec![
                (0, PAGE_SIZE, 1),
                (2 * PAGE_SIZE as u64, PAGE_SIZE, 1),
                (5 * PAGE_SIZE as u64, PAGE_SIZE, 9),
            ]
        );
        dev.clear_log();
        assert!(dev.read_log().is_empty());
    }
}
