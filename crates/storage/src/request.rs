//! IO request representation and contiguous-page merging.
//!
//! Blaze merges **up to four contiguous 4 KiB pages** into one request and
//! never merges across gaps: on fast NVMe drives, random 4 KiB reads are
//! cheap enough that fetching non-target pages to enlarge a request is a net
//! loss, and large requests inflate async submission time (Section IV-C).

use blaze_types::{LocalPageId, MAX_MERGED_PAGES};

/// One read request: `num_pages` contiguous pages starting at `first_page`.
///
/// Page ids here are **device-local** ([`LocalPageId`]): the engine first
/// splits the global page frontier into per-device local lists
/// (`StripedStorage::partition_pages`) and only then merges each device's
/// list, so a request addresses one device and `offset()` is a byte offset
/// *on that device*. Contiguous local pages are strided global pages
/// (neighbors on an `n`-device array differ by `n` globally), which is why
/// merging must happen after partitioning, never on global ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// First device-local page of the run.
    pub first_page: LocalPageId,
    /// Number of contiguous pages (1..=[`MAX_MERGED_PAGES`]).
    pub num_pages: u32,
}

impl IoRequest {
    /// Byte offset of the request on its device.
    pub fn offset(&self) -> u64 {
        self.first_page * blaze_types::PAGE_SIZE as u64
    }

    /// Request length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.num_pages as usize * blaze_types::PAGE_SIZE
    }

    /// One past the last local page covered.
    pub fn end_page(&self) -> LocalPageId {
        self.first_page + self.num_pages as u64
    }
}

/// Merges a **sorted, deduplicated** slice of device-local page ids into IO
/// requests, combining runs of contiguous pages up to `max_merge` pages per
/// request. A `max_merge` of zero is clamped to 1 (merging disabled) rather
/// than silently producing one request per run of unbounded length.
///
/// Panics in debug builds if `pages` is not strictly increasing.
pub fn merge_pages_with_window(pages: &[LocalPageId], max_merge: usize) -> Vec<IoRequest> {
    debug_assert!(
        pages.windows(2).all(|w| w[0] < w[1]),
        "pages must be sorted unique"
    );
    let max_merge = max_merge.max(1);
    let mut requests = Vec::new();
    let mut iter = pages.iter().copied();
    let Some(first) = iter.next() else {
        return requests;
    };
    let mut run_start = first;
    let mut run_len = 1u32;
    for page in iter {
        if page == run_start + run_len as u64 && (run_len as usize) < max_merge {
            run_len += 1;
        } else {
            requests.push(IoRequest {
                first_page: run_start,
                num_pages: run_len,
            });
            run_start = page;
            run_len = 1;
        }
    }
    requests.push(IoRequest {
        first_page: run_start,
        num_pages: run_len,
    });
    requests
}

/// [`merge_pages_with_window`] with the paper's window of
/// [`MAX_MERGED_PAGES`] pages.
pub fn merge_pages(pages: &[LocalPageId]) -> Vec<IoRequest> {
    merge_pages_with_window(pages, MAX_MERGED_PAGES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(first: u64, n: u32) -> IoRequest {
        IoRequest {
            first_page: first,
            num_pages: n,
        }
    }

    #[test]
    fn empty_input_yields_no_requests() {
        assert!(merge_pages(&[]).is_empty());
    }

    #[test]
    fn isolated_pages_stay_single() {
        assert_eq!(
            merge_pages(&[1, 3, 7]),
            vec![req(1, 1), req(3, 1), req(7, 1)]
        );
    }

    #[test]
    fn contiguous_run_merges_up_to_four() {
        assert_eq!(merge_pages(&[10, 11, 12, 13]), vec![req(10, 4)]);
    }

    #[test]
    fn long_run_splits_at_window() {
        // Nine contiguous pages -> 4 + 4 + 1.
        let pages: Vec<u64> = (0..9).collect();
        assert_eq!(merge_pages(&pages), vec![req(0, 4), req(4, 4), req(8, 1)]);
    }

    #[test]
    fn gaps_are_never_bridged() {
        // 0,1 then gap then 3,4: Graphene would bridge small gaps; Blaze must not.
        assert_eq!(merge_pages(&[0, 1, 3, 4]), vec![req(0, 2), req(3, 2)]);
    }

    #[test]
    fn window_of_one_disables_merging() {
        assert_eq!(
            merge_pages_with_window(&[0, 1, 2], 1),
            vec![req(0, 1), req(1, 1), req(2, 1)]
        );
    }

    #[test]
    fn window_of_zero_clamps_to_one() {
        // A zero window used to be a debug_assert (aborting debug builds)
        // and undefined-ish in release; it must now behave exactly like a
        // window of 1 in both build profiles.
        assert_eq!(
            merge_pages_with_window(&[0, 1, 2], 0),
            merge_pages_with_window(&[0, 1, 2], 1)
        );
        assert_eq!(merge_pages_with_window(&[5], 0), vec![req(5, 1)]);
        assert!(merge_pages_with_window(&[], 0).is_empty());
    }

    #[test]
    fn request_geometry() {
        let r = req(3, 2);
        assert_eq!(r.offset(), 3 * 4096);
        assert_eq!(r.len_bytes(), 8192);
        assert_eq!(r.end_page(), 5);
    }

    #[test]
    fn merged_requests_cover_exactly_the_input() {
        let pages = vec![0u64, 1, 2, 3, 4, 8, 9, 20, 21, 22, 23, 24, 25, 26, 27, 28];
        let reqs = merge_pages(&pages);
        let mut covered = Vec::new();
        for r in &reqs {
            assert!(r.num_pages as usize <= MAX_MERGED_PAGES);
            covered.extend(r.first_page..r.end_page());
        }
        assert_eq!(covered, pages);
    }
}
