//! Device simulation: attaches a [`DeviceProfile`] service-time model and
//! sequential/random classification to any functional [`BlockDevice`].

use blaze_sync::atomic::{AtomicU64, Ordering};

use blaze_types::Result;

use crate::device::BlockDevice;
use crate::profile::{AccessPattern, DeviceProfile};
use crate::stats::IoStats;

/// A [`BlockDevice`] wrapper that classifies each read as sequential or
/// random (by comparing its offset with the end of the previous request) and
/// charges the modeled service time of the wrapped [`DeviceProfile`] to the
/// device's [`IoStats`].
///
/// The data path is fully functional — reads return real bytes from the inner
/// device — while `stats().busy_ns()` accumulates the time the *modeled* SSD
/// would have been busy, which is what the bench harness converts into
/// bandwidth figures.
#[derive(Debug)]
pub struct SimDevice<D> {
    inner: D,
    profile: DeviceProfile,
    /// Byte offset one past the end of the previous read, for seq/rand
    /// classification. `u64::MAX` before the first request.
    prev_end: AtomicU64,
    stats: IoStats,
}

impl<D: BlockDevice> SimDevice<D> {
    /// Wraps `inner` with the service-time model of `profile`.
    pub fn new(inner: D, profile: DeviceProfile) -> Self {
        Self {
            inner,
            profile,
            prev_end: AtomicU64::new(u64::MAX),
            stats: IoStats::new(),
        }
    }

    /// The performance profile this device simulates.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The wrapped functional device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Classifies a request at `offset` and advances the sequential cursor.
    fn classify(&self, offset: u64, len: u64) -> AccessPattern {
        let prev = self.prev_end.swap(offset + len, Ordering::Relaxed); // sync-audit: heuristic cursor; a stale value only misclassifies a pattern.
        if prev == offset {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        }
    }
}

impl<D: BlockDevice> BlockDevice for SimDevice<D> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let pattern = self.classify(offset, buf.len() as u64);
        self.inner.read_at(offset, buf)?;
        let service = self.profile.read_service_ns(buf.len() as u64, pattern);
        self.stats.add_busy_ns(service);
        self.stats
            .record_read(buf.len() as u64, pattern == AccessPattern::Sequential);
        Ok(())
    }

    /// The queue-depth-aware read path used by the async IO backends.
    ///
    /// Overlapping in-flight requests share the modeled fixed latency
    /// (`DeviceProfile::read_service_ns_at_depth`), so benches sweeping the
    /// engine's queue depth reproduce the QD→bandwidth curve of Table I.
    /// Deep-queue reads are classified as random and bypass the sequential
    /// cursor: completions arrive out of order, so a predecessor-offset
    /// heuristic would turn scheduling noise into modeled time.
    fn read_pages_at_depth(&self, first_page: u64, buf: &mut [u8], depth: u32) -> Result<()> {
        self.inner.read_pages(first_page, buf)?;
        let service = self
            .profile
            .read_service_ns_at_depth(buf.len() as u64, depth);
        self.stats.add_busy_ns(service);
        self.stats.record_read(buf.len() as u64, false);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<()> {
        self.inner.write_at(offset, buf)?;
        self.stats.record_write(buf.len() as u64);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDevice;
    use blaze_types::PAGE_SIZE;

    fn sim(pages: usize, profile: DeviceProfile) -> SimDevice<MemDevice> {
        SimDevice::new(MemDevice::with_len(pages * PAGE_SIZE), profile)
    }

    #[test]
    fn sequential_reads_are_classified_sequential() {
        let dev = sim(16, DeviceProfile::optane_p4800x());
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..8 {
            dev.read_pages(p, &mut buf).unwrap();
        }
        // First read is random (no predecessor), the rest sequential.
        assert_eq!(dev.stats().read_ops(), 8);
        assert_eq!(dev.stats().sequential_reads(), 7);
    }

    #[test]
    fn strided_reads_are_classified_random() {
        let dev = sim(16, DeviceProfile::optane_p4800x());
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in [0u64, 5, 2, 9, 14] {
            dev.read_pages(p, &mut buf).unwrap();
        }
        assert_eq!(dev.stats().sequential_reads(), 0);
    }

    #[test]
    fn nand_random_is_charged_more_than_sequential() {
        let seq = sim(1024, DeviceProfile::nand_s3520());
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..256 {
            seq.read_pages(p, &mut buf).unwrap();
        }
        let rand = sim(1024, DeviceProfile::nand_s3520());
        for i in 0..256u64 {
            rand.read_pages((i * 397) % 1024, &mut buf).unwrap();
        }
        let t_seq = seq.stats().busy_ns();
        let t_rand = rand.stats().busy_ns();
        assert!(
            t_rand as f64 > 2.0 * t_seq as f64,
            "rand {t_rand} should be ≫ seq {t_seq} on NAND"
        );
    }

    #[test]
    fn optane_random_is_nearly_free_of_penalty() {
        let mut buf = vec![0u8; PAGE_SIZE];
        let seq = sim(1024, DeviceProfile::optane_p4800x());
        for p in 0..256 {
            seq.read_pages(p, &mut buf).unwrap();
        }
        let rand = sim(1024, DeviceProfile::optane_p4800x());
        for i in 0..256u64 {
            rand.read_pages((i * 397) % 1024, &mut buf).unwrap();
        }
        let ratio = rand.stats().busy_ns() as f64 / seq.stats().busy_ns() as f64;
        assert!(ratio < 1.15, "optane rand/seq busy ratio {ratio}");
    }

    #[test]
    fn modeled_bandwidth_matches_profile() {
        let dev = sim(4096, DeviceProfile::optane_p4800x());
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..4096 {
            dev.read_pages(p, &mut buf).unwrap();
        }
        let bw = dev.stats().modeled_read_bandwidth().unwrap();
        let expected = DeviceProfile::optane_p4800x()
            .effective_bandwidth(PAGE_SIZE as u64, AccessPattern::Sequential);
        let rel = (bw - expected).abs() / expected;
        assert!(rel < 0.05, "bw {bw} vs expected {expected}");
    }

    #[test]
    fn depth_aware_reads_overlap_latency() {
        let profile = DeviceProfile::optane_p4800x();
        let busy_at = |depth: u32| {
            let mut buf = vec![0u8; PAGE_SIZE];
            let dev = sim(64, profile.clone());
            for p in 0..32 {
                dev.read_pages_at_depth(p, &mut buf, depth).unwrap();
            }
            dev.stats().busy_ns()
        };
        let shallow = busy_at(1);
        let deep = busy_at(32);
        assert!(
            deep < shallow,
            "32 overlapped requests ({deep} ns) must be cheaper than 32 serialized ({shallow} ns)"
        );
        // The transfer term never overlaps, so the gain is bounded by the
        // latency the shallow queue paid.
        assert!(shallow - deep <= 32 * profile.latency_ns);
    }

    #[test]
    fn depth_aware_reads_are_functional_and_counted() {
        let dev = sim(8, DeviceProfile::nand_s3520());
        dev.write_at(2 * PAGE_SIZE as u64, &[9u8; PAGE_SIZE])
            .unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        dev.read_pages_at_depth(2, &mut buf, 16).unwrap();
        assert!(buf.iter().all(|&b| b == 9));
        assert_eq!(dev.stats().read_ops(), 1);
        assert_eq!(dev.stats().read_bytes(), PAGE_SIZE as u64);
        assert!(dev.stats().busy_ns() > 0);
    }

    #[test]
    fn data_path_is_functional() {
        let dev = sim(2, DeviceProfile::vnand_980pro());
        dev.write_at(0, &[7u8; PAGE_SIZE]).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        dev.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }
}
