//! Per-device IO accounting.

use blaze_sync::atomic::{AtomicU64, Ordering};

use blaze_types::{CachePadded, PAGE_SIZE};

/// Thread-safe IO counters attached to every device.
///
/// All counters use relaxed atomics: they are statistics, not
/// synchronization. `busy_ns` is only populated by [`SimDevice`] and holds
/// the modeled device service time in nanoseconds.
///
/// [`SimDevice`]: crate::SimDevice
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    sequential_reads: AtomicU64,
    busy_ns: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read of `bytes`; `sequential` marks whether the request
    /// started exactly where the previous one ended.
    pub fn record_read(&self, bytes: u64, sequential: bool) {
        // sync-audit: Relaxed — monotonic statistics counters; readers are
        // either post-join or tolerate a slightly stale snapshot, so only
        // per-op atomicity matters (each line below, and the other counter
        // methods of this impl, inherit this argument).
        self.read_ops.fetch_add(1, Ordering::Relaxed); // sync-audit: see above.
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        if sequential {
            self.sequential_reads.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        }
    }

    /// Records one write of `bytes`.
    pub fn record_write(&self, bytes: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// Adds modeled device busy time.
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// Number of read requests served.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Number of write requests served.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Read requests that continued the previous request's offset.
    pub fn sequential_reads(&self) -> u64 {
        self.sequential_reads.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Modeled device busy time in nanoseconds (zero for functional devices).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Modeled average read bandwidth in bytes/second over the busy period.
    /// Returns `None` when no busy time has been recorded.
    pub fn modeled_read_bandwidth(&self) -> Option<f64> {
        let ns = self.busy_ns();
        if ns == 0 {
            return None;
        }
        Some(self.read_bytes() as f64 / (ns as f64 / 1e9))
    }

    /// Resets every counter to zero. Used between bench phases.
    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.read_bytes.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_ops.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_bytes.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.sequential_reads.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.busy_ns.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops(),
            read_bytes: self.read_bytes(),
            write_ops: self.write_ops(),
            write_bytes: self.write_bytes(),
            sequential_reads: self.sequential_reads(),
            busy_ns: self.busy_ns(),
        }
    }
}

/// Number of log-scale per-request latency buckets tracked per job.
/// Bucket `i` counts requests with service time in `[4^i, 4^(i+1))`
/// microseconds (bucket 0 additionally absorbs sub-microsecond requests,
/// the last bucket absorbs everything ≥ ~4.3 s).
pub const LATENCY_BUCKETS: usize = 8;

/// Bucket index for a request that took `ns` nanoseconds.
fn latency_bucket(ns: u64) -> usize {
    let mut bucket = 0;
    let mut upper = 4_000u64; // 4 µs: upper bound of bucket 0.
    while bucket + 1 < LATENCY_BUCKETS && ns >= upper {
        bucket += 1;
        upper = upper.saturating_mul(4);
    }
    bucket
}

/// Per-device counters of one job, cache-padded so the per-device IO
/// workers never share a line.
#[derive(Debug)]
struct JobDeviceStats {
    stats: IoStats,
    /// Local page index where the next sequential read would start;
    /// `u64::MAX` before the first read.
    next_local: AtomicU64,
    /// Pages this job's IO role served from the page cache (no device IO).
    cache_hit_pages: AtomicU64,
    /// Pages that missed the cache and were fetched from the device.
    cache_miss_pages: AtomicU64,
    /// Resident pages the cache evicted while absorbing this job's fills.
    cache_evictions: AtomicU64,
    /// Cache-hit pages that lie in the graph's hot (hub) page region.
    cache_hot_hit_pages: AtomicU64,
    /// Fills the cache admitted with a hot-region second-chance credit.
    cache_hot_admit_pages: AtomicU64,
    /// Pages this job received from another job's flight (scan sharing)
    /// instead of its own device read.
    shared_hit_pages: AtomicU64,
    /// Flights this job led: device reads it performed whose frames were
    /// published for concurrent and trailing subscribers.
    flights_led: AtomicU64,
    /// Requests submitted to the IO backend by this job.
    submits: AtomicU64,
    /// Sum over submits of the in-flight depth at submission time, for the
    /// mean in-flight depth of the trace.
    depth_sum: AtomicU64,
    /// Maximum in-flight depth observed at any submission.
    depth_max: AtomicU64,
    /// Per-request service-time histogram (log-scale, [`LATENCY_BUCKETS`]).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
}

/// Per-*job* IO accounting, scoped to one pipeline submission.
///
/// The device-global [`IoStats`] keep accumulating across every job that
/// touches a device, which is right for lifetime totals but wrong for
/// per-iteration traces once independent jobs interleave on the same
/// engine: a before/after snapshot of the device counters would charge one
/// job with another job's IO. Each pipeline job therefore carries its own
/// `JobIoStats`, fed by the job's IO role alongside the device counters,
/// and the iteration trace is built from these instead of device deltas.
#[derive(Debug)]
pub struct JobIoStats {
    devices: Vec<CachePadded<JobDeviceStats>>,
    /// Compute-side per-stage totals, padded away from the device counters.
    compute: CachePadded<JobComputeStats>,
}

/// Job-wide compute-stage counters, accumulated by the scatter and gather
/// workers of one pipeline submission.
#[derive(Debug, Default)]
struct JobComputeStats {
    /// Nanoseconds scatter workers spent decoding pages and staging records.
    scatter_ns: AtomicU64,
    /// Nanoseconds gather workers spent applying full bins.
    gather_ns: AtomicU64,
    /// Nanoseconds scatter workers spent idle waiting for filled buffers.
    io_wait_ns: AtomicU64,
    /// Records merged away by scatter-side combining.
    records_combined: AtomicU64,
    /// Asynchronous rounds recorded on this job (0 for barrier jobs, 1 for
    /// a priority-frontier round).
    async_rounds: AtomicU64,
    /// Priority bucket the round's batch was drained from.
    async_batch_priority: AtomicU64,
    /// Vertices the round's gathers pushed into the priority frontier.
    async_activations: AtomicU64,
    /// Pushes that collapsed into an already-queued vertex.
    async_dedup_skipped: AtomicU64,
}

impl JobIoStats {
    /// Zeroed counters for `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        Self {
            compute: CachePadded::new(JobComputeStats::default()),
            devices: (0..num_devices)
                .map(|_| {
                    CachePadded::new(JobDeviceStats {
                        stats: IoStats::new(),
                        next_local: AtomicU64::new(u64::MAX),
                        cache_hit_pages: AtomicU64::new(0),
                        cache_miss_pages: AtomicU64::new(0),
                        cache_evictions: AtomicU64::new(0),
                        cache_hot_hit_pages: AtomicU64::new(0),
                        cache_hot_admit_pages: AtomicU64::new(0),
                        shared_hit_pages: AtomicU64::new(0),
                        flights_led: AtomicU64::new(0),
                        submits: AtomicU64::new(0),
                        depth_sum: AtomicU64::new(0),
                        depth_max: AtomicU64::new(0),
                        latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    })
                })
                .collect(),
        }
    }

    /// Number of devices tracked.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Records one merged read of `pages` local pages starting at
    /// `first_local_page` on `device`, tracking sequentiality per device.
    pub fn record_read(&self, device: usize, first_local_page: u64, pages: usize) {
        let dev = &self.devices[device];
        let end = first_local_page + pages as u64;
        // sync-audit: Relaxed — one IO worker per device is the only writer,
        // so the swap is just a cheap sequentiality cursor; readers are
        // post-completion.
        let prev = dev.next_local.swap(end, Ordering::Relaxed);
        dev.stats
            .record_read((pages * PAGE_SIZE) as u64, prev == first_local_page);
    }

    /// Adds modeled device busy time for `device`.
    pub fn add_busy_ns(&self, device: usize, ns: u64) {
        self.devices[device].stats.add_busy_ns(ns);
    }

    /// Records one request submission to the IO backend with `in_flight`
    /// requests outstanding on `device` (including this one).
    pub fn record_submit(&self, device: usize, in_flight: u64) {
        // sync-audit: Relaxed — per-job depth statistics written by the one
        // IO worker pumping this device and read only after the job's roles
        // have finished; no cross-thread ordering is needed (record_latency
        // and the readers below inherit this argument).
        let dev = &self.devices[device];
        dev.submits.fetch_add(1, Ordering::Relaxed); // sync-audit: see record_submit.
        dev.depth_sum.fetch_add(in_flight, Ordering::Relaxed); // sync-audit: see record_submit.
        dev.depth_max.fetch_max(in_flight, Ordering::Relaxed); // sync-audit: see record_submit.
    }

    /// Records the service time of one reaped completion on `device`.
    pub fn record_latency(&self, device: usize, service_ns: u64) {
        self.devices[device].latency_buckets[latency_bucket(service_ns)]
            .fetch_add(1, Ordering::Relaxed); // sync-audit: see record_submit.
    }

    /// `(max, mean)` in-flight depth across all devices' submissions. The
    /// mean is over submissions, not time. `(0, 0.0)` before any submit.
    pub fn depth_stats(&self) -> (u64, f64) {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut submits = 0u64;
        for dev in &self.devices {
            max = max.max(dev.depth_max.load(Ordering::Relaxed)); // sync-audit: see record_submit.
            sum += dev.depth_sum.load(Ordering::Relaxed); // sync-audit: see record_submit.
            submits += dev.submits.load(Ordering::Relaxed); // sync-audit: see record_submit.
        }
        if submits == 0 {
            (0, 0.0)
        } else {
            (max, sum as f64 / submits as f64)
        }
    }

    /// Per-request latency histogram summed across devices
    /// ([`LATENCY_BUCKETS`] log-scale buckets).
    pub fn latency_histogram(&self) -> Vec<u64> {
        let mut out = vec![0u64; LATENCY_BUCKETS];
        for dev in &self.devices {
            for (slot, bucket) in out.iter_mut().zip(dev.latency_buckets.iter()) {
                *slot += bucket.load(Ordering::Relaxed); // sync-audit: see record_submit.
            }
        }
        out
    }

    /// Records `pages` page-cache hits attributed to `device`'s IO role.
    pub fn record_cache_hits(&self, device: usize, pages: u64) {
        // sync-audit: Relaxed — the three cache counters are monotonic
        // per-job statistics written by one IO worker per device and read
        // only after the job's roles have finished; no ordering with other
        // memory is required (the methods below inherit this argument).
        self.devices[device]
            .cache_hit_pages
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `pages` page-cache misses attributed to `device`'s IO role.
    pub fn record_cache_misses(&self, device: usize, pages: u64) {
        self.devices[device]
            .cache_miss_pages
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `pages` cache evictions caused by `device`'s fills.
    pub fn record_cache_evictions(&self, device: usize, pages: u64) {
        self.devices[device]
            .cache_evictions
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `pages` cache hits that fell in the hot page region.
    pub fn record_cache_hot_hits(&self, device: usize, pages: u64) {
        self.devices[device]
            .cache_hot_hit_pages
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `pages` fills admitted with a hot-region credit.
    pub fn record_cache_hot_admits(&self, device: usize, pages: u64) {
        self.devices[device]
            .cache_hot_admit_pages
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `pages` served to `device`'s IO role by another job's
    /// flight (scan sharing) instead of a device read of its own.
    pub fn record_shared_hits(&self, device: usize, pages: u64) {
        self.devices[device]
            .shared_hit_pages
            .fetch_add(pages, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// Records `flights` scan-sharing flights led by `device`'s IO role.
    pub fn record_flights_led(&self, device: usize, flights: u64) {
        self.devices[device]
            .flights_led
            .fetch_add(flights, Ordering::Relaxed); // sync-audit: see record_cache_hits.
    }

    /// `(shared_hit_pages, flights_led)` scan-sharing totals across all
    /// devices. Only authoritative once the job's IO roles have finished.
    pub fn shared_totals(&self) -> (u64, u64) {
        let mut totals = (0, 0);
        for dev in &self.devices {
            totals.0 += dev.shared_hit_pages.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
            totals.1 += dev.flights_led.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
        }
        totals
    }

    /// `(hits, misses, evictions)` page totals across all devices. Only
    /// authoritative once the job's IO roles have finished.
    pub fn cache_totals(&self) -> (u64, u64, u64) {
        let mut totals = (0, 0, 0);
        for dev in &self.devices {
            totals.0 += dev.cache_hit_pages.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
            totals.1 += dev.cache_miss_pages.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
            totals.2 += dev.cache_evictions.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
        }
        totals
    }

    /// `(hot_hits, hot_admits)` page totals across all devices. Only
    /// authoritative once the job's IO roles have finished.
    pub fn cache_hot_totals(&self) -> (u64, u64) {
        let mut totals = (0, 0);
        for dev in &self.devices {
            totals.0 += dev.cache_hot_hit_pages.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
            totals.1 += dev.cache_hot_admit_pages.load(Ordering::Relaxed); // sync-audit: see record_cache_hits.
        }
        totals
    }

    /// Per-device snapshots, for building an iteration trace. Only
    /// authoritative once the job's IO roles have finished.
    pub fn snapshots(&self) -> Vec<IoStatsSnapshot> {
        self.devices.iter().map(|d| d.stats.snapshot()).collect()
    }

    /// Adds time one scatter worker spent decoding pages and staging.
    pub fn add_scatter_ns(&self, ns: u64) {
        // sync-audit: Relaxed — per-stage compute totals are monotonic
        // statistics written by the job's compute workers and read only
        // after the job completes; no cross-thread ordering is needed (the
        // other compute-stage methods inherit this argument).
        self.compute.scatter_ns.fetch_add(ns, Ordering::Relaxed); // sync-audit: see add_scatter_ns.
    }

    /// Adds time one gather worker spent applying full bins.
    pub fn add_gather_ns(&self, ns: u64) {
        self.compute.gather_ns.fetch_add(ns, Ordering::Relaxed); // sync-audit: see add_scatter_ns.
    }

    /// Adds time one scatter worker spent idle waiting for filled buffers.
    pub fn add_io_wait_ns(&self, ns: u64) {
        self.compute.io_wait_ns.fetch_add(ns, Ordering::Relaxed); // sync-audit: see add_scatter_ns.
    }

    /// Adds records merged away by one scatter worker's combine window.
    pub fn add_records_combined(&self, records: u64) {
        self.compute
            .records_combined
            .fetch_add(records, Ordering::Relaxed); // sync-audit: see add_scatter_ns.
    }

    /// `(scatter_ns, gather_ns, io_wait_ns, records_combined)` totals. Only
    /// authoritative once the job's compute roles have finished.
    pub fn compute_totals(&self) -> (u64, u64, u64, u64) {
        (
            self.compute.scatter_ns.load(Ordering::Relaxed), // sync-audit: see add_scatter_ns.
            self.compute.gather_ns.load(Ordering::Relaxed),  // sync-audit: see add_scatter_ns.
            self.compute.io_wait_ns.load(Ordering::Relaxed), // sync-audit: see add_scatter_ns.
            self.compute.records_combined.load(Ordering::Relaxed), // sync-audit: see add_scatter_ns.
        )
    }

    /// Marks this job as one asynchronous priority round: the batch was
    /// drained from bucket `priority`, its gathers pushed `activations`
    /// fresh vertices and had `dedup_skipped` pushes collapse into already
    /// queued ones. Called once by the driver after the round completes.
    pub fn record_async_round(&self, priority: u64, activations: u64, dedup_skipped: u64) {
        // sync-audit: Relaxed — written once by the driving thread after the
        // round's workers joined, read by the same thread building the
        // trace; no cross-thread ordering is needed (async_totals inherits
        // this argument).
        self.compute.async_rounds.fetch_add(1, Ordering::Relaxed); // sync-audit: see record_async_round.
        self.compute
            .async_batch_priority
            .store(priority, Ordering::Relaxed); // sync-audit: see record_async_round.
        self.compute
            .async_activations
            .fetch_add(activations, Ordering::Relaxed); // sync-audit: see record_async_round.
        self.compute
            .async_dedup_skipped
            .fetch_add(dedup_skipped, Ordering::Relaxed); // sync-audit: see record_async_round.
    }

    /// `(rounds, batch_priority, activations, dedup_skipped)` of the async
    /// round, all zero for barrier jobs. Only authoritative once the job
    /// completed.
    pub fn async_totals(&self) -> (u64, u64, u64, u64) {
        (
            self.compute.async_rounds.load(Ordering::Relaxed), // sync-audit: see record_async_round.
            self.compute.async_batch_priority.load(Ordering::Relaxed), // sync-audit: see record_async_round.
            self.compute.async_activations.load(Ordering::Relaxed), // sync-audit: see record_async_round.
            self.compute.async_dedup_skipped.load(Ordering::Relaxed), // sync-audit: see record_async_round.
        )
    }
}

/// A plain-data copy of [`IoStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub read_ops: u64,
    pub read_bytes: u64,
    pub write_ops: u64,
    pub write_bytes: u64,
    pub sequential_reads: u64,
    pub busy_ns: u64,
}

impl IoStatsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_ops: self.write_ops - earlier.write_ops,
            write_bytes: self.write_bytes - earlier.write_bytes,
            sequential_reads: self.sequential_reads - earlier.sequential_reads,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(4096, true);
        s.record_read(8192, false);
        s.record_write(4096);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.read_bytes(), 12288);
        assert_eq!(s.sequential_reads(), 1);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.write_bytes(), 4096);
    }

    #[test]
    fn bandwidth_requires_busy_time() {
        let s = IoStats::new();
        s.record_read(1 << 20, false);
        assert!(s.modeled_read_bandwidth().is_none());
        s.add_busy_ns(1_000_000_000);
        let bw = s.modeled_read_bandwidth().unwrap();
        assert!((bw - (1 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = IoStats::new();
        s.record_read(4096, true);
        s.add_busy_ns(5);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::new();
        s.record_read(4096, false);
        let a = s.snapshot();
        s.record_read(4096, true);
        s.record_read(4096, true);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_ops, 2);
        assert_eq!(d.read_bytes, 8192);
        assert_eq!(d.sequential_reads, 2);
    }

    #[test]
    fn job_stats_track_sequential_runs_per_device() {
        let j = JobIoStats::new(2);
        // Device 0: two back-to-back runs, then a seek.
        j.record_read(0, 0, 4);
        j.record_read(0, 4, 2);
        j.record_read(0, 100, 1);
        // Device 1: first read is never sequential.
        j.record_read(1, 0, 8);
        let snaps = j.snapshots();
        assert_eq!(snaps[0].read_ops, 3);
        assert_eq!(snaps[0].read_bytes, 7 * PAGE_SIZE as u64);
        assert_eq!(snaps[0].sequential_reads, 1);
        assert_eq!(snaps[1].read_ops, 1);
        assert_eq!(snaps[1].sequential_reads, 0);
    }

    #[test]
    fn job_cache_counters_total_across_devices() {
        let j = JobIoStats::new(3);
        j.record_cache_hits(0, 5);
        j.record_cache_hits(2, 7);
        j.record_cache_misses(1, 11);
        j.record_cache_evictions(1, 2);
        j.record_cache_evictions(2, 3);
        assert_eq!(j.cache_totals(), (12, 11, 5));
        assert_eq!(j.cache_hot_totals(), (0, 0));
        j.record_cache_hot_hits(0, 4);
        j.record_cache_hot_hits(1, 1);
        j.record_cache_hot_admits(2, 6);
        assert_eq!(j.cache_hot_totals(), (5, 6));
        assert_eq!(j.cache_totals(), (12, 11, 5), "hot counters are separate");
    }

    #[test]
    fn shared_scan_counters_total_across_devices() {
        let j = JobIoStats::new(2);
        assert_eq!(j.shared_totals(), (0, 0));
        j.record_shared_hits(0, 8);
        j.record_shared_hits(1, 4);
        j.record_flights_led(0, 3);
        assert_eq!(j.shared_totals(), (12, 3));
        assert_eq!(j.cache_totals(), (0, 0, 0), "shared counters are separate");
    }

    #[test]
    fn depth_stats_track_max_and_mean_across_devices() {
        let j = JobIoStats::new(2);
        assert_eq!(j.depth_stats(), (0, 0.0));
        j.record_submit(0, 1);
        j.record_submit(0, 2);
        j.record_submit(0, 3);
        j.record_submit(1, 2);
        let (max, mean) = j.depth_stats();
        assert_eq!(max, 3);
        assert!((mean - 2.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn latency_buckets_are_log_scale() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(3_999), 0);
        assert_eq!(latency_bucket(4_000), 1);
        assert_eq!(latency_bucket(15_999), 1);
        assert_eq!(latency_bucket(16_000), 2);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        let j = JobIoStats::new(2);
        j.record_latency(0, 100); // bucket 0
        j.record_latency(0, 10_000); // bucket 1
        j.record_latency(1, 10_000); // bucket 1
        j.record_latency(1, 100_000); // bucket 3
        let hist = j.latency_histogram();
        assert_eq!(hist.len(), LATENCY_BUCKETS);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
        assert_eq!(hist[3], 1);
        assert_eq!(hist.iter().sum::<u64>(), 4);
    }

    #[test]
    fn compute_stage_totals_accumulate() {
        let j = JobIoStats::new(1);
        assert_eq!(j.compute_totals(), (0, 0, 0, 0));
        j.add_scatter_ns(10);
        j.add_scatter_ns(5);
        j.add_gather_ns(7);
        j.add_io_wait_ns(3);
        j.add_records_combined(42);
        assert_eq!(j.compute_totals(), (15, 7, 3, 42));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = blaze_sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_read(4096, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_ops(), 4000);
        assert_eq!(s.read_bytes(), 4000 * 4096);
    }
}
