//! Per-device IO accounting.

use blaze_sync::atomic::{AtomicU64, Ordering};

/// Thread-safe IO counters attached to every device.
///
/// All counters use relaxed atomics: they are statistics, not
/// synchronization. `busy_ns` is only populated by [`SimDevice`] and holds
/// the modeled device service time in nanoseconds.
///
/// [`SimDevice`]: crate::SimDevice
#[derive(Debug, Default)]
pub struct IoStats {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    sequential_reads: AtomicU64,
    busy_ns: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read of `bytes`; `sequential` marks whether the request
    /// started exactly where the previous one ended.
    pub fn record_read(&self, bytes: u64, sequential: bool) {
        // sync-audit: Relaxed — monotonic statistics counters; readers are
        // either post-join or tolerate a slightly stale snapshot, so only
        // per-op atomicity matters (each line below, and the other counter
        // methods of this impl, inherit this argument).
        self.read_ops.fetch_add(1, Ordering::Relaxed); // sync-audit: see above.
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        if sequential {
            self.sequential_reads.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        }
    }

    /// Records one write of `bytes`.
    pub fn record_write(&self, bytes: u64) {
        self.write_ops.fetch_add(1, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// Adds modeled device busy time.
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// Number of read requests served.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Number of write requests served.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Read requests that continued the previous request's offset.
    pub fn sequential_reads(&self) -> u64 {
        self.sequential_reads.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Modeled device busy time in nanoseconds (zero for functional devices).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed) // sync-audit: stats counter; see record_read.
    }

    /// Modeled average read bandwidth in bytes/second over the busy period.
    /// Returns `None` when no busy time has been recorded.
    pub fn modeled_read_bandwidth(&self) -> Option<f64> {
        let ns = self.busy_ns();
        if ns == 0 {
            return None;
        }
        Some(self.read_bytes() as f64 / (ns as f64 / 1e9))
    }

    /// Resets every counter to zero. Used between bench phases.
    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.read_bytes.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_ops.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.write_bytes.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.sequential_reads.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
        self.busy_ns.store(0, Ordering::Relaxed); // sync-audit: stats counter; see record_read.
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops(),
            read_bytes: self.read_bytes(),
            write_ops: self.write_ops(),
            write_bytes: self.write_bytes(),
            sequential_reads: self.sequential_reads(),
            busy_ns: self.busy_ns(),
        }
    }
}

/// A plain-data copy of [`IoStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    pub read_ops: u64,
    pub read_bytes: u64,
    pub write_ops: u64,
    pub write_bytes: u64,
    pub sequential_reads: u64,
    pub busy_ns: u64,
}

impl IoStatsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_ops: self.write_ops - earlier.write_ops,
            write_bytes: self.write_bytes - earlier.write_bytes,
            sequential_reads: self.sequential_reads - earlier.sequential_reads,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read(4096, true);
        s.record_read(8192, false);
        s.record_write(4096);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.read_bytes(), 12288);
        assert_eq!(s.sequential_reads(), 1);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.write_bytes(), 4096);
    }

    #[test]
    fn bandwidth_requires_busy_time() {
        let s = IoStats::new();
        s.record_read(1 << 20, false);
        assert!(s.modeled_read_bandwidth().is_none());
        s.add_busy_ns(1_000_000_000);
        let bw = s.modeled_read_bandwidth().unwrap();
        assert!((bw - (1 << 20) as f64).abs() < 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let s = IoStats::new();
        s.record_read(4096, true);
        s.add_busy_ns(5);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::new();
        s.record_read(4096, false);
        let a = s.snapshot();
        s.record_read(4096, true);
        s.record_read(4096, true);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_ops, 2);
        assert_eq!(d.read_bytes, 8192);
        assert_eq!(d.sequential_reads, 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = blaze_sync::Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_read(4096, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_ops(), 4000);
        assert_eq!(s.read_bytes(), 4000 * 4096);
    }
}
