//! Page-interleaved (RAID-0) striping over multiple block devices.
//!
//! Blaze rejects topology-aware 2-D partitioning (Graphene) because selective
//! scheduling then loads disks unevenly. Instead the adjacency file is
//! striped across all SSDs in 4 KiB pages: global page `p` lives on device
//! `p % n` at local page `p / n`, so *any* subset of graph pages spreads
//! almost perfectly evenly over the array (Section IV-E).

use blaze_sync::Arc;

use blaze_types::{BlazeError, DeviceId, LocalPageId, PageId, Result, PAGE_SIZE};

use crate::device::BlockDevice;

/// A RAID-0 array of block devices with a 4 KiB stripe unit.
pub struct StripedStorage {
    devices: Vec<Arc<dyn BlockDevice>>,
}

impl StripedStorage {
    /// Builds an array over `devices`. At least one device is required.
    pub fn new(devices: Vec<Arc<dyn BlockDevice>>) -> Result<Self> {
        if devices.is_empty() {
            return Err(BlazeError::Config(
                "striped storage needs >= 1 device".into(),
            ));
        }
        Ok(Self { devices })
    }

    /// Convenience constructor: `n` fresh in-memory devices.
    pub fn in_memory(n: usize) -> Result<Self> {
        let devices = (0..n)
            .map(|_| Arc::new(crate::mem::MemDevice::new()) as Arc<dyn BlockDevice>)
            .collect();
        Self::new(devices)
    }

    /// Number of devices in the array.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device at index `d`.
    pub fn device(&self, d: DeviceId) -> &Arc<dyn BlockDevice> {
        &self.devices[d]
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<dyn BlockDevice>] {
        &self.devices
    }

    /// Maps a global page to `(device, local_page)`.
    pub fn locate(&self, page: PageId) -> (DeviceId, u64) {
        let n = self.devices.len() as u64;
        ((page % n) as DeviceId, page / n)
    }

    /// Inverse of [`locate`](Self::locate).
    pub fn global_page(&self, device: DeviceId, local_page: u64) -> PageId {
        local_page * self.devices.len() as u64 + device as u64
    }

    /// Writes one page of data at global page `page`.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let (dev, local) = self.locate(page);
        self.devices[dev].write_at(local * PAGE_SIZE as u64, data)
    }

    /// Reads one page of data at global page `page`.
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let (dev, local) = self.locate(page);
        self.devices[dev].read_at(local * PAGE_SIZE as u64, buf)
    }

    /// Reads `buf.len() / PAGE_SIZE` *locally contiguous* pages from one
    /// device, starting at local page `local_first` ([`LocalPageId`] space —
    /// not global page ids). This is the request shape the engine's
    /// per-device IO threads issue after merging.
    ///
    /// The run is bounds-checked against the device before any read: a run
    /// extending past the device's last whole page returns
    /// [`BlazeError::Io`] instead of panicking or handing back a partially
    /// valid buffer.
    ///
    /// [`LocalPageId`]: blaze_types::LocalPageId
    pub fn read_local_run(
        &self,
        device: DeviceId,
        local_first: LocalPageId,
        buf: &mut [u8],
    ) -> Result<()> {
        debug_assert_eq!(buf.len() % PAGE_SIZE, 0);
        self.check_local_run(device, local_first, buf.len())?;
        self.devices[device].read_at(local_first * PAGE_SIZE as u64, buf)
    }

    /// [`read_local_run`](Self::read_local_run) with an in-flight-depth hint
    /// for the device's service-time model — the request shape the async IO
    /// backends issue. Same bounds checking; additionally rejects a `buf`
    /// that is not a whole number of pages with a real error (this path is
    /// fed by untrusted queue traffic, not a debug assertion away from the
    /// caller).
    pub fn read_local_run_at_depth(
        &self,
        device: DeviceId,
        local_first: LocalPageId,
        buf: &mut [u8],
        depth: u32,
    ) -> Result<()> {
        self.check_local_run(device, local_first, buf.len())?;
        self.devices[device].read_pages_at_depth(local_first, buf, depth)
    }

    /// Bounds-checks a run of `buf_len / PAGE_SIZE` pages at `local_first`
    /// against the device's current length.
    fn check_local_run(
        &self,
        device: DeviceId,
        local_first: LocalPageId,
        buf_len: usize,
    ) -> Result<()> {
        let dev = &self.devices[device];
        let pages = (buf_len / PAGE_SIZE) as u64;
        let avail = dev.num_pages();
        match local_first.checked_add(pages) {
            Some(end) if end <= avail => Ok(()),
            _ => Err(BlazeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "local run [{local_first}, {local_first}+{pages}) exceeds the \
                     {avail} pages of device {device}"
                ),
            ))),
        }
    }

    /// Splits a sorted list of global pages into per-device sorted lists of
    /// *local* page ids ([`LocalPageId`] space) — the per-SSD page frontiers
    /// of Figure 5. These lists are what feeds request merging; merged
    /// requests address the owning device directly via
    /// [`read_local_run`](Self::read_local_run).
    pub fn partition_pages(&self, pages: &[PageId]) -> Vec<Vec<LocalPageId>> {
        let mut per_device = vec![Vec::new(); self.devices.len()];
        for &p in pages {
            let (dev, local) = self.locate(p);
            per_device[dev].push(local);
        }
        per_device
    }

    /// Total number of pages across the array, assuming pages were written
    /// densely from page 0 (the layout the graph writer produces).
    pub fn num_pages(&self) -> u64 {
        self.devices.iter().map(|d| d.num_pages()).sum()
    }

    /// Aggregated bytes read across all devices.
    pub fn total_read_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.stats().read_bytes()).sum()
    }

    /// Per-device read bytes, for IO-skew measurements (Figure 3).
    pub fn read_bytes_per_device(&self) -> Vec<u64> {
        self.devices
            .iter()
            .map(|d| d.stats().read_bytes())
            .collect()
    }

    /// Resets statistics on every device.
    pub fn reset_stats(&self) {
        for d in &self.devices {
            d.stats().reset();
        }
    }
}

impl std::fmt::Debug for StripedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedStorage")
            .field("num_devices", &self.devices.len())
            .field("num_pages", &self.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn locate_round_trips() {
        let s = StripedStorage::in_memory(3).unwrap();
        for p in 0..30u64 {
            let (d, l) = s.locate(p);
            assert_eq!(s.global_page(d, l), p);
        }
    }

    #[test]
    fn pages_interleave_round_robin() {
        let s = StripedStorage::in_memory(4).unwrap();
        assert_eq!(s.locate(0), (0, 0));
        assert_eq!(s.locate(1), (1, 0));
        assert_eq!(s.locate(5), (1, 1));
        assert_eq!(s.locate(7), (3, 1));
    }

    #[test]
    fn write_read_through_stripe() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..8u64 {
            s.read_page(p, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == p as u8), "page {p}");
        }
        assert_eq!(s.num_pages(), 8);
    }

    #[test]
    fn local_run_reads_strided_global_pages() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        // Device 1 holds global pages 1,3,5,7 at local pages 0..4.
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        s.read_local_run(1, 1, &mut buf).unwrap();
        assert!(buf[..PAGE_SIZE].iter().all(|&b| b == 3));
        assert!(buf[PAGE_SIZE..2 * PAGE_SIZE].iter().all(|&b| b == 5));
        assert!(buf[2 * PAGE_SIZE..].iter().all(|&b| b == 7));
    }

    #[test]
    fn partition_preserves_order_and_balance() {
        let s = StripedStorage::in_memory(4).unwrap();
        let pages: Vec<u64> = (0..100).collect();
        let parts = s.partition_pages(&pages);
        assert_eq!(parts.len(), 4);
        for (d, locals) in parts.iter().enumerate() {
            assert_eq!(locals.len(), 25);
            assert!(locals.windows(2).all(|w| w[0] < w[1]));
            for (i, &l) in locals.iter().enumerate() {
                assert_eq!(s.global_page(d, l), (i * 4 + d) as u64);
            }
        }
    }

    #[test]
    fn arbitrary_page_subsets_stay_balanced() {
        // The core claim of Section IV-E: any subset of pages is nearly
        // evenly spread (counts differ by at most 1 for a contiguous range).
        let s = StripedStorage::in_memory(8).unwrap();
        let pages: Vec<u64> = (13..13 + 1001).collect();
        let parts = s.partition_pages(&pages);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1, "max {max} min {min}");
    }

    #[test]
    fn empty_array_is_rejected() {
        assert!(StripedStorage::new(Vec::new()).is_err());
    }

    #[test]
    fn out_of_range_local_run_errors_on_mem_device() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        // Each device holds 4 local pages. A run ending exactly at the edge
        // is fine; anything past it must be an Io error, not zeros.
        let mut buf = vec![0u8; 2 * PAGE_SIZE];
        s.read_local_run(0, 2, &mut buf).unwrap();
        assert!(matches!(
            s.read_local_run(0, 3, &mut buf),
            Err(BlazeError::Io(_))
        ));
        assert!(matches!(
            s.read_local_run(1, 4, &mut buf),
            Err(BlazeError::Io(_))
        ));
        // Offset arithmetic that would overflow u64 is caught, not wrapped.
        assert!(matches!(
            s.read_local_run(0, u64::MAX - 1, &mut buf),
            Err(BlazeError::Io(_))
        ));
    }

    #[test]
    fn out_of_range_local_run_errors_on_file_device() {
        let dir = tempfile::tempdir().unwrap();
        let devices: Vec<Arc<dyn BlockDevice>> = (0..2)
            .map(|i| {
                Arc::new(crate::FileDevice::create(dir.path().join(format!("d{i}"))).unwrap())
                    as Arc<dyn BlockDevice>
            })
            .collect();
        let s = StripedStorage::new(devices).unwrap();
        for p in 0..4u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        s.read_local_run(0, 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
        let mut big = vec![0u8; 2 * PAGE_SIZE];
        assert!(matches!(
            s.read_local_run(0, 1, &mut big),
            Err(BlazeError::Io(_))
        ));
        assert!(matches!(
            s.read_local_run(1, 2, &mut buf),
            Err(BlazeError::Io(_))
        ));
    }

    #[test]
    fn depth_aware_run_matches_plain_run() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        let mut plain = vec![0u8; 2 * PAGE_SIZE];
        let mut deep = vec![0u8; 2 * PAGE_SIZE];
        s.read_local_run(1, 1, &mut plain).unwrap();
        s.read_local_run_at_depth(1, 1, &mut deep, 16).unwrap();
        assert_eq!(plain, deep);
        // Same bounds checking as the plain path.
        assert!(matches!(
            s.read_local_run_at_depth(1, 3, &mut deep, 16),
            Err(BlazeError::Io(_))
        ));
        // Misaligned buffers are a real error on this path.
        let mut ragged = vec![0u8; PAGE_SIZE + 7];
        assert!(matches!(
            s.read_local_run_at_depth(0, 0, &mut ragged, 1),
            Err(BlazeError::Io(_))
        ));
    }

    #[test]
    fn strided_globals_round_trip_through_partition_merge_and_read() {
        // The satellite-bug regression: IoRequest.first_page is
        // device-local. Global pages strided across 3 devices must come
        // back with the right contents when fed through
        // partition_pages -> merge_pages_with_window -> read_local_run.
        // Mixing up global and local spaces would read the wrong device
        // offsets for every device but 0.
        let s = StripedStorage::in_memory(3).unwrap();
        for p in 0..30u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        // A frontier with gaps: globals 1,2,4,5,7,10,13,14,22,25,28.
        let frontier: Vec<u64> = vec![1, 2, 4, 5, 7, 10, 13, 14, 22, 25, 28];
        let parts = s.partition_pages(&frontier);
        let mut seen = Vec::new();
        for (dev, locals) in parts.iter().enumerate() {
            for req in crate::request::merge_pages_with_window(locals, 4) {
                let n = req.num_pages as usize;
                let mut buf = vec![0u8; n * PAGE_SIZE];
                s.read_local_run(dev, req.first_page, &mut buf).unwrap();
                for k in 0..n {
                    let global = s.global_page(dev, req.first_page + k as u64);
                    let chunk = &buf[k * PAGE_SIZE..(k + 1) * PAGE_SIZE];
                    assert!(
                        chunk.iter().all(|&b| b == global as u8),
                        "device {dev} local {} returned wrong page",
                        req.first_page + k as u64
                    );
                    seen.push(global);
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, frontier, "every frontier page read exactly once");
    }
}
