//! Page-interleaved (RAID-0) striping over multiple block devices.
//!
//! Blaze rejects topology-aware 2-D partitioning (Graphene) because selective
//! scheduling then loads disks unevenly. Instead the adjacency file is
//! striped across all SSDs in 4 KiB pages: global page `p` lives on device
//! `p % n` at local page `p / n`, so *any* subset of graph pages spreads
//! almost perfectly evenly over the array (Section IV-E).

use blaze_sync::Arc;

use blaze_types::{BlazeError, DeviceId, PageId, Result, PAGE_SIZE};

use crate::device::BlockDevice;

/// A RAID-0 array of block devices with a 4 KiB stripe unit.
pub struct StripedStorage {
    devices: Vec<Arc<dyn BlockDevice>>,
}

impl StripedStorage {
    /// Builds an array over `devices`. At least one device is required.
    pub fn new(devices: Vec<Arc<dyn BlockDevice>>) -> Result<Self> {
        if devices.is_empty() {
            return Err(BlazeError::Config(
                "striped storage needs >= 1 device".into(),
            ));
        }
        Ok(Self { devices })
    }

    /// Convenience constructor: `n` fresh in-memory devices.
    pub fn in_memory(n: usize) -> Result<Self> {
        let devices = (0..n)
            .map(|_| Arc::new(crate::mem::MemDevice::new()) as Arc<dyn BlockDevice>)
            .collect();
        Self::new(devices)
    }

    /// Number of devices in the array.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device at index `d`.
    pub fn device(&self, d: DeviceId) -> &Arc<dyn BlockDevice> {
        &self.devices[d]
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<dyn BlockDevice>] {
        &self.devices
    }

    /// Maps a global page to `(device, local_page)`.
    pub fn locate(&self, page: PageId) -> (DeviceId, u64) {
        let n = self.devices.len() as u64;
        ((page % n) as DeviceId, page / n)
    }

    /// Inverse of [`locate`](Self::locate).
    pub fn global_page(&self, device: DeviceId, local_page: u64) -> PageId {
        local_page * self.devices.len() as u64 + device as u64
    }

    /// Writes one page of data at global page `page`.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let (dev, local) = self.locate(page);
        self.devices[dev].write_at(local * PAGE_SIZE as u64, data)
    }

    /// Reads one page of data at global page `page`.
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let (dev, local) = self.locate(page);
        self.devices[dev].read_at(local * PAGE_SIZE as u64, buf)
    }

    /// Reads `buf.len() / PAGE_SIZE` *locally contiguous* pages from one
    /// device, starting at `local_first`. This is the request shape the
    /// engine's per-device IO threads issue after merging.
    pub fn read_local_run(&self, device: DeviceId, local_first: u64, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len() % PAGE_SIZE, 0);
        self.devices[device].read_at(local_first * PAGE_SIZE as u64, buf)
    }

    /// Splits a sorted list of global pages into per-device sorted lists of
    /// *local* page ids — the per-SSD page frontiers of Figure 5.
    pub fn partition_pages(&self, pages: &[PageId]) -> Vec<Vec<u64>> {
        let mut per_device = vec![Vec::new(); self.devices.len()];
        for &p in pages {
            let (dev, local) = self.locate(p);
            per_device[dev].push(local);
        }
        per_device
    }

    /// Total number of pages across the array, assuming pages were written
    /// densely from page 0 (the layout the graph writer produces).
    pub fn num_pages(&self) -> u64 {
        self.devices.iter().map(|d| d.num_pages()).sum()
    }

    /// Aggregated bytes read across all devices.
    pub fn total_read_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.stats().read_bytes()).sum()
    }

    /// Per-device read bytes, for IO-skew measurements (Figure 3).
    pub fn read_bytes_per_device(&self) -> Vec<u64> {
        self.devices
            .iter()
            .map(|d| d.stats().read_bytes())
            .collect()
    }

    /// Resets statistics on every device.
    pub fn reset_stats(&self) {
        for d in &self.devices {
            d.stats().reset();
        }
    }
}

impl std::fmt::Debug for StripedStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedStorage")
            .field("num_devices", &self.devices.len())
            .field("num_pages", &self.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn locate_round_trips() {
        let s = StripedStorage::in_memory(3).unwrap();
        for p in 0..30u64 {
            let (d, l) = s.locate(p);
            assert_eq!(s.global_page(d, l), p);
        }
    }

    #[test]
    fn pages_interleave_round_robin() {
        let s = StripedStorage::in_memory(4).unwrap();
        assert_eq!(s.locate(0), (0, 0));
        assert_eq!(s.locate(1), (1, 0));
        assert_eq!(s.locate(5), (1, 1));
        assert_eq!(s.locate(7), (3, 1));
    }

    #[test]
    fn write_read_through_stripe() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..8u64 {
            s.read_page(p, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == p as u8), "page {p}");
        }
        assert_eq!(s.num_pages(), 8);
    }

    #[test]
    fn local_run_reads_strided_global_pages() {
        let s = StripedStorage::in_memory(2).unwrap();
        for p in 0..8u64 {
            s.write_page(p, &page_of(p as u8)).unwrap();
        }
        // Device 1 holds global pages 1,3,5,7 at local pages 0..4.
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        s.read_local_run(1, 1, &mut buf).unwrap();
        assert!(buf[..PAGE_SIZE].iter().all(|&b| b == 3));
        assert!(buf[PAGE_SIZE..2 * PAGE_SIZE].iter().all(|&b| b == 5));
        assert!(buf[2 * PAGE_SIZE..].iter().all(|&b| b == 7));
    }

    #[test]
    fn partition_preserves_order_and_balance() {
        let s = StripedStorage::in_memory(4).unwrap();
        let pages: Vec<u64> = (0..100).collect();
        let parts = s.partition_pages(&pages);
        assert_eq!(parts.len(), 4);
        for (d, locals) in parts.iter().enumerate() {
            assert_eq!(locals.len(), 25);
            assert!(locals.windows(2).all(|w| w[0] < w[1]));
            for (i, &l) in locals.iter().enumerate() {
                assert_eq!(s.global_page(d, l), (i * 4 + d) as u64);
            }
        }
    }

    #[test]
    fn arbitrary_page_subsets_stay_balanced() {
        // The core claim of Section IV-E: any subset of pages is nearly
        // evenly spread (counts differ by at most 1 for a contiguous range).
        let s = StripedStorage::in_memory(8).unwrap();
        let pages: Vec<u64> = (13..13 + 1001).collect();
        let parts = s.partition_pages(&pages);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1, "max {max} min {min}");
    }

    #[test]
    fn empty_array_is_rejected() {
        assert!(StripedStorage::new(Vec::new()).is_err());
    }
}
