//! io_uring slot-in for the [`IoBackend`] trait (feature `io-uring`).
//!
//! The paper's engine drives its SSDs with libaio; the modern equivalent is
//! io_uring, whose SQ/CQ rings are exactly the shape the [`IoBackend`]
//! trait exposes. This build environment has no io_uring bindings (and no
//! network to fetch them), so this module ships the *seam*, not the
//! syscalls: [`UringBackend`] presents the io_uring-style construction API
//! (ring depth per device) and today fulfils it by delegating to the
//! [`ThreadedBackend`] submitter pool, which already provides deep queues,
//! out-of-order completions, and structural back-pressure. Replacing the
//! delegate with real `io_uring_enter` plumbing changes no caller.
//!
//! Compile-checked in CI via `cargo check -p blaze-storage --features
//! io-uring`.

use blaze_sync::Arc;

use blaze_types::{DeviceId, Result};

use crate::backend::{Completion, IoBackend, ThreadedBackend};
use crate::buffer::IoBuffer;
use crate::request::IoRequest;
use crate::stripe::StripedStorage;

/// An [`IoBackend`] with io_uring construction semantics: one ring (of
/// `entries` slots) per device.
///
/// Currently emulated on the [`ThreadedBackend`] thread pool — see the
/// module docs. [`is_native`](Self::is_native) reports which mechanism is
/// live so benches can annotate their output honestly.
#[derive(Debug)]
pub struct UringBackend {
    inner: ThreadedBackend,
}

impl UringBackend {
    /// Creates one ring of `entries` slots per device of `storage`.
    ///
    /// Fails on `entries == 0` (a zero-slot ring is an invalid
    /// `io_uring_setup` call, and the emulation keeps the same contract).
    pub fn new(storage: Arc<StripedStorage>, entries: usize) -> Result<Self> {
        if entries == 0 {
            return Err(blaze_types::BlazeError::Config(
                "io_uring ring needs >= 1 entry".into(),
            ));
        }
        Ok(Self {
            inner: ThreadedBackend::new(storage, entries),
        })
    }

    /// Whether requests go through a real kernel io_uring. Always `false`
    /// in this build: the backend emulates the ring on a thread pool.
    pub fn is_native(&self) -> bool {
        false
    }
}

impl IoBackend for UringBackend {
    fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }

    fn submit(&self, device: DeviceId, request: IoRequest, buffer: IoBuffer, tag: u64) {
        self.inner.submit(device, request, buffer, tag);
    }

    fn try_reap(&self, device: DeviceId) -> Option<Completion> {
        self.inner.try_reap(device)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use blaze_types::PAGE_SIZE;

    #[test]
    fn uring_stub_round_trips_and_reports_emulation() {
        let s = Arc::new(StripedStorage::in_memory(1).unwrap());
        for p in 0..4u64 {
            s.write_page(p, &vec![p as u8; PAGE_SIZE]).unwrap();
        }
        assert!(UringBackend::new(s.clone(), 0).is_err());
        let ring = UringBackend::new(s, 8).unwrap();
        assert!(!ring.is_native());
        assert_eq!(ring.queue_depth(), 8);
        ring.submit(
            0,
            IoRequest {
                first_page: 2,
                num_pages: 1,
            },
            IoBuffer::new(),
            42,
        );
        let c = ring.reap(0);
        c.result.unwrap();
        assert_eq!(c.tag, 42);
        assert!(c.buffer.pages(1).iter().all(|&b| b == 2));
    }
}
