//! Property-based tests of the threaded IO backend: for any page set,
//! merge window, and queue depth, pumping the merged requests through
//! [`ThreadedBackend`] — completions arriving in any order — must return
//! exactly the bytes the synchronous [`StripedStorage::read_local_run`]
//! oracle reads, once per request, with no buffer lost.

use proptest::prelude::*;

use blaze_storage::request::merge_pages_with_window;
use blaze_storage::{IoBackend, IoBuffer, StripedStorage, ThreadedBackend};
use blaze_sync::Arc;
use blaze_types::PAGE_SIZE;

/// Storage of `pages_per_device * devices` global pages, each filled with
/// its global id.
fn storage(devices: usize, pages_per_device: u64) -> Arc<StripedStorage> {
    let s = Arc::new(StripedStorage::in_memory(devices).unwrap());
    for p in 0..pages_per_device * devices as u64 {
        s.write_page(p, &vec![p as u8; PAGE_SIZE]).unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn threaded_completions_match_the_sync_oracle(
        devices in 1usize..4,
        pages_per_device in 1u64..48,
        queue_depth in 1usize..17,
        window in 1usize..6,
        mask in 0u64..=u64::MAX,
    ) {
        let s = storage(devices, pages_per_device);
        let backend = ThreadedBackend::new(s.clone(), queue_depth);
        for device in 0..devices {
            // A random subset of the device's local pages, ascending.
            let locals: Vec<u64> = (0..pages_per_device)
                .filter(|p| mask >> (p % 64) & 1 == 1)
                .collect();
            let requests = merge_pages_with_window(&locals, window);
            let mut next = 0usize;
            let mut in_flight = 0usize;
            let mut completed = vec![false; requests.len()];
            while next < requests.len() || in_flight > 0 {
                while in_flight < queue_depth && next < requests.len() {
                    backend.submit(device, requests[next], IoBuffer::new(), next as u64);
                    next += 1;
                    in_flight += 1;
                }
                if in_flight == 0 {
                    break;
                }
                let c = backend.reap(device);
                in_flight -= 1;
                prop_assert!(c.result.is_ok(), "in-range read failed: {:?}", c.result);
                let tag = c.tag as usize;
                prop_assert!(!completed[tag], "request {tag} completed twice");
                completed[tag] = true;
                prop_assert_eq!(c.request, requests[tag], "completion carries its request");
                let n = c.request.num_pages as usize;
                let mut oracle = vec![0u8; n * PAGE_SIZE];
                s.read_local_run(device, c.request.first_page, &mut oracle).unwrap();
                prop_assert_eq!(
                    c.buffer.pages(n),
                    &oracle[..],
                    "device {} run at {} x{}",
                    device,
                    c.request.first_page,
                    n
                );
            }
            prop_assert!(completed.iter().all(|&d| d), "every request completes");
            prop_assert!(backend.try_reap(device).is_none(), "no stray completions");
        }
    }
}
