//! Model-checked tests of the sharded clock page cache.
//!
//! The cache's algorithmic state (resident map, frames, clock hand) lives
//! entirely under per-shard mutexes; the model checker's job here is to
//! prove the *protocol* around that lock, under every interleaving:
//!
//! * a `get` racing an eviction never observes a recycled or torn frame —
//!   the `Arc` handed out stays the bytes that were inserted for that page;
//! * two inserts racing on the same page never double-insert it (one frame
//!   per page, capacity never exceeded);
//! * concurrent fills of a full cache keep residency bounded at capacity.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-storage --test loom_cache --release`
#![cfg(loom)]

use blaze_storage::PageCache;
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

fn page(byte: u8) -> Arc<[u8]> {
    vec![byte; 4].into()
}

/// A reader holding a frame races an inserter that evicts that very page
/// (capacity 1, so any insert of a different page evicts). The reader's
/// data must stay exactly the bytes inserted for its page — never the
/// evictor's bytes, never torn.
#[test]
fn eviction_never_invalidates_a_handed_out_frame() {
    let report = check_with(cfg(2), || {
        let c = Arc::new(PageCache::with_capacity_pages(1));
        c.insert(1, page(1));
        let reader = {
            let c = c.clone();
            thread::spawn(move || c.get(1).map(|d| d.to_vec()))
        };
        let evictor = {
            let c = c.clone();
            thread::spawn(move || c.insert(2, page(2)))
        };
        if let Some(data) = reader.join().unwrap() {
            assert_eq!(data, vec![1; 4], "reader saw evictor's bytes");
        }
        assert!(
            evictor.join().unwrap().evicted,
            "insert into a full shard evicts"
        );
        // Whatever the order, page 2 is resident afterwards and page 1
        // is gone: capacity 1 holds exactly one page.
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(2).expect("page 2 resident")[0], 2);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Two threads race to insert the SAME page: the cache must hold exactly
/// one frame for it (len 1) in every schedule, and a subsequent get must
/// return one of the two inserted values, whole.
#[test]
fn racing_same_page_inserts_never_double_insert() {
    let report = check_with(cfg(2), || {
        let c = Arc::new(PageCache::with_capacity_pages(4));
        let handles: Vec<_> = [7u8, 9]
            .into_iter()
            .map(|fill| {
                let c = c.clone();
                thread::spawn(move || c.insert(42, page(fill)))
            })
            .collect();
        for h in handles {
            // Neither racer may report an eviction: the cache is not full,
            // and the loser updates the winner's frame in place.
            assert!(
                !h.join().unwrap().evicted,
                "same-page insert evicted something"
            );
        }
        assert_eq!(c.len(), 1, "page 42 occupies more than one frame");
        let data = c.get(42).expect("page 42 resident").to_vec();
        assert!(
            data == vec![7; 4] || data == vec![9; 4],
            "torn frame: {data:?}"
        );
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Concurrent inserts of distinct pages into a tiny cache: residency never
/// exceeds capacity, and every page either hits (with its own bytes) or
/// misses — never someone else's bytes.
#[test]
fn concurrent_fills_stay_bounded_at_capacity() {
    let report = check_with(cfg(2), || {
        let c = Arc::new(PageCache::with_capacity_pages(2));
        let writers: Vec<_> = [3u64, 4, 5]
            .into_iter()
            .map(|p| {
                let c = c.clone();
                thread::spawn(move || c.insert(p, page(p as u8)))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert!(c.len() <= 2, "residency exceeded capacity");
        for p in [3u64, 4, 5] {
            if let Some(data) = c.get(p) {
                assert_eq!(data[0], p as u8, "page {p} holds foreign bytes");
            }
        }
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Insert racing a get of a different, resident page: the hit must always
/// succeed with intact data — an unrelated insert can never knock out or
/// corrupt another shard slot without evicting it (capacity is ample).
#[test]
fn get_of_resident_page_survives_unrelated_insert() {
    check_with(cfg(2), || {
        let c = Arc::new(PageCache::with_capacity_pages(4));
        c.insert(10, page(10));
        let getter = {
            let c = c.clone();
            thread::spawn(move || c.get(10).expect("resident page must hit").to_vec())
        };
        let inserter = {
            let c = c.clone();
            thread::spawn(move || c.insert(11, page(11)))
        };
        assert_eq!(getter.join().unwrap(), vec![10; 4]);
        assert!(
            !inserter.join().unwrap().evicted,
            "no eviction below capacity"
        );
        assert_eq!(c.len(), 2);
    });
}

/// Two threads race hot-region fills against a protected budget of one
/// credit: exactly one admission wins in every schedule — the budget
/// counter lives under the shard mutex and can never be double-granted.
#[test]
fn hot_credit_budget_is_never_exceeded() {
    let report = check_with(cfg(2), || {
        let mut cache = PageCache::with_capacity_pages(2);
        cache.set_hot_region(64, 0.5); // 1 of 2 frames may hold a credit
        let c = Arc::new(cache);
        let writers: Vec<_> = [0u64, 1]
            .into_iter()
            .map(|p| {
                let c = c.clone();
                thread::spawn(move || c.insert(p, page(p as u8)))
            })
            .collect();
        let admitted = writers
            .into_iter()
            .map(|w| w.join().unwrap().hot_admitted)
            .filter(|&hot| hot)
            .count();
        assert_eq!(admitted, 1, "budget of one credit granted {admitted} times");
        assert_eq!(c.stats().hot_admits, 1);
    });
    assert!(report.executions > 1, "explored only one schedule");
}
