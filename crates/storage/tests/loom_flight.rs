//! Model-checked tests of the scan-sharing flight table.
//!
//! The flight table's registry lives under per-device mutexes and each
//! flight's outcome under its own mutex + condvar; the model checker's
//! job is to prove the cross-thread *protocol* under every interleaving:
//!
//! * two jobs racing to plan the same run produce exactly one leader and
//!   one device read — the loser joins and observes the winner's frames,
//!   with no lost wakeup on the outcome condvar;
//! * a subscriber arriving after the leader completed is served from the
//!   retention ring without blocking;
//! * a failing leader drains its error to the parked subscriber and
//!   clears the flight, so a retry plan leads again instead of wedging.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-storage --test loom_flight --release`
#![cfg(loom)]

use blaze_storage::{FlightPart, FlightTable, IoRequest, PageFrame};
use blaze_sync::atomic::{AtomicUsize, Ordering};
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

fn req(first: u64, n: u32) -> IoRequest {
    IoRequest {
        first_page: first,
        num_pages: n,
    }
}

fn frames(n: usize, byte: u8) -> Vec<PageFrame> {
    (0..n).map(|_| vec![byte; 4].into()).collect()
}

/// Plans the whole run and plays one job's part in it: a lead "reads the
/// device" (bumps `reads`, completes with its own byte), a join waits for
/// the leader's frames. Returns the bytes this job would scatter.
fn run_job(table: &FlightTable, reads: &AtomicUsize, seq: u64, byte: u8) -> Vec<u8> {
    let mut out = Vec::new();
    for part in table.plan(0, req(0, 2), seq) {
        match part {
            FlightPart::Lead(lease) => {
                reads.fetch_add(1, Ordering::Relaxed); // sync-audit: model-test read counter; exactness per-op, order irrelevant.
                let n = lease.request().num_pages as usize;
                for f in frames(n, byte) {
                    out.push(f[0]);
                }
                lease.complete(frames(n, byte));
            }
            FlightPart::Join(ticket) => {
                for f in ticket.wait().expect("leader completed") {
                    out.push(f[0]);
                }
            }
        }
    }
    out
}

/// Two jobs race to scan the same two-page run: in every schedule exactly
/// one device read happens, both jobs observe the same (leader's) bytes
/// for every page, and the parked loser is always woken — no lost wakeup
/// between the outcome publish and the condvar wait.
#[test]
fn racing_planners_coalesce_to_one_device_read() {
    let report = check_with(cfg(2), || {
        let table = Arc::new(FlightTable::new(1, 4));
        let reads = Arc::new(AtomicUsize::new(0));
        let a = {
            let (table, reads) = (table.clone(), reads.clone());
            thread::spawn(move || run_job(&table, &reads, 0, 0xaa))
        };
        let b = {
            let (table, reads) = (table.clone(), reads.clone());
            thread::spawn(move || run_job(&table, &reads, 1, 0xbb))
        };
        let got_a = a.join().unwrap();
        let got_b = b.join().unwrap();
        assert_eq!(
            reads.load(Ordering::Relaxed), // sync-audit: model-test read counter; threads joined.
            1,
            "exactly one leader reads the device"
        );
        assert_eq!(got_a.len(), 2);
        assert_eq!(got_a, got_b, "both jobs scatter the leader's bytes");
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// A subscriber arriving strictly after the leader resolved is served
/// from the retention ring: no new flight, no blocking, frames intact.
#[test]
fn late_arrival_joins_the_retained_flight() {
    let report = check_with(cfg(2), || {
        let table = Arc::new(FlightTable::new(1, 4));
        let leader = {
            let table = table.clone();
            thread::spawn(move || match table.plan(0, req(0, 2), 0).remove(0) {
                FlightPart::Lead(lease) => lease.complete(frames(2, 0x42)),
                FlightPart::Join(_) => panic!("sole planner must lead"),
            })
        };
        leader.join().unwrap();
        // After the leader's thread joined, the flight is retained; a
        // late subscriber must resolve without parking.
        let part = table.plan(0, req(1, 1), 1).remove(0);
        match part {
            FlightPart::Join(ticket) => {
                let got = ticket.try_wait().expect("retained flight is resolved");
                assert_eq!(got.expect("leader succeeded")[0][0], 0x42);
            }
            FlightPart::Lead(_) => panic!("retained run must be joined"),
        };
    });
    let _ = report;
}

/// A failing leader races a parked subscriber: the subscriber always
/// observes the error (never wedges), and the failed flight is cleared so
/// a retry plan becomes a fresh leader.
#[test]
fn leader_failure_drains_to_subscribers_and_clears_the_flight() {
    let report = check_with(cfg(2), || {
        let table = Arc::new(FlightTable::new(1, 4));
        let lease = match table.plan(0, req(0, 2), 0).remove(0) {
            FlightPart::Lead(lease) => lease,
            FlightPart::Join(_) => panic!("first planner must lead"),
        };
        let subscriber = {
            let table = table.clone();
            thread::spawn(move || match table.plan(0, req(0, 2), 1).remove(0) {
                // Raced in before the failure was deregistered: the wait
                // must surface the leader's error.
                FlightPart::Join(ticket) => ticket.wait().is_err(),
                // Raced in after the deregister: a fresh lead; complete it
                // so its own subscribers (none here) are not abandoned.
                FlightPart::Lead(lease) => {
                    lease.complete(frames(2, 0x01));
                    true
                }
            })
        };
        lease.fail("injected");
        assert!(subscriber.join().unwrap(), "subscriber never wedges");
        // The failed flight is gone: pending is empty and it was not
        // retained, so the next planner either leads or joins the
        // subscriber's *successful* retry — never the failed flight.
        assert_eq!(table.pending_len(0), 0);
        let part = table.plan(0, req(0, 2), 2).remove(0);
        match part {
            FlightPart::Lead(lease) => lease.complete(frames(2, 0x02)),
            FlightPart::Join(ticket) => {
                assert!(ticket.try_wait().expect("resolved").is_ok());
            }
        };
    });
    assert!(report.executions > 1, "explored only one schedule");
}
