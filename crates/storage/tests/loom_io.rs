//! Model-checked tests of the threaded IO backend's submission/completion
//! protocol, under every interleaving the model explores:
//!
//! * two in-flight requests complete in either order, each exactly once,
//!   with the bytes of its own request — reordering never loses or
//!   duplicates a completion;
//! * `submit` back-pressures at `queue_depth`: a second submit into a
//!   depth-1 window blocks until the first request leaves the queue, and
//!   the model terminates (no deadlock) with both requests completed;
//! * when the device fails, every submitted request still produces exactly
//!   one completion carrying its buffer — the error path drains rather
//!   than leaking.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p blaze-storage --test loom_io --release`
#![cfg(loom)]

use blaze_storage::{
    BlockDevice, FaultyDevice, IoBackend, IoBuffer, IoRequest, MemDevice, StripedStorage,
    ThreadedBackend,
};
use blaze_sync::model::{check_with, Config};
use blaze_sync::{thread, Arc};
use blaze_types::PAGE_SIZE;

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

/// One-device storage with `pages` pages, each filled with its page id.
fn storage(pages: u64) -> Arc<StripedStorage> {
    let s = Arc::new(StripedStorage::in_memory(1).unwrap());
    for p in 0..pages {
        s.write_page(p, &vec![p as u8; PAGE_SIZE]).unwrap();
    }
    s
}

fn req(page: u64) -> IoRequest {
    IoRequest {
        first_page: page,
        num_pages: 1,
    }
}

/// Two requests in flight at depth 2: whatever order the submitter pool
/// serves them, the pump reaps both exactly once and each completion
/// carries its own page's bytes.
#[test]
fn completions_reorder_but_never_lose_or_duplicate() {
    let report = check_with(cfg(2), || {
        let backend = ThreadedBackend::new(storage(2), 2);
        backend.submit(0, req(0), IoBuffer::new(), 0);
        backend.submit(0, req(1), IoBuffer::new(), 1);
        let mut seen = [false; 2];
        for _ in 0..2 {
            let c = backend.reap(0);
            c.result.unwrap();
            let tag = c.tag as usize;
            assert!(!seen[tag], "tag {tag} completed twice");
            seen[tag] = true;
            assert_eq!(c.request.first_page, c.tag);
            assert!(
                c.buffer.pages(1).iter().all(|&b| b == c.tag as u8),
                "completion {tag} carries another request's bytes"
            );
        }
        assert!(seen[0] && seen[1]);
        assert!(backend.try_reap(0).is_none(), "stray completion");
    });
    assert!(report.executions > 1, "expected multiple interleavings");
}

/// A depth-1 window admits one request at a time: the second `submit`
/// back-pressures until the submitter drains the queue. The model proves
/// the blocking handshake terminates under every schedule.
#[test]
fn submit_backpressures_at_queue_depth() {
    let report = check_with(cfg(2), || {
        let backend = Arc::new(ThreadedBackend::new(storage(2), 1));
        let pump = {
            let backend = backend.clone();
            thread::spawn(move || {
                backend.submit(0, req(0), IoBuffer::new(), 0);
                // Only admitted once request 0 left the one-slot queue.
                backend.submit(0, req(1), IoBuffer::new(), 1);
                let a = backend.reap(0);
                let b = backend.reap(0);
                assert_eq!(
                    {
                        let mut tags = [a.tag, b.tag];
                        tags.sort_unstable();
                        tags
                    },
                    [0, 1]
                );
                a.result.unwrap();
                b.result.unwrap();
            })
        };
        pump.join().unwrap();
    });
    assert!(report.executions > 1, "expected multiple interleavings");
}

/// Every submission against a failing device still produces exactly one
/// completion, error inside, buffer attached: the drain-on-error path
/// cannot leak a buffer or wedge the reaper.
#[test]
fn errors_drain_with_their_buffers() {
    let report = check_with(cfg(2), || {
        let dev: Arc<dyn BlockDevice> = Arc::new(FaultyDevice::fail_every(
            MemDevice::with_len(4 * PAGE_SIZE),
            1,
        ));
        let s = Arc::new(StripedStorage::new(vec![dev]).unwrap());
        let backend = ThreadedBackend::new(s, 2);
        backend.submit(0, req(0), IoBuffer::new(), 0);
        backend.submit(0, req(1), IoBuffer::new(), 1);
        let mut buffers = 0;
        for _ in 0..2 {
            let c = backend.reap(0);
            assert!(c.result.is_err(), "every read is injected to fail");
            buffers += usize::from(c.buffer.capacity_pages() > 0);
        }
        assert_eq!(buffers, 2, "both buffers came back with their errors");
        assert!(backend.try_reap(0).is_none());
    });
    assert!(report.executions > 1, "expected multiple interleavings");
}
