//! Exponential backoff for spin loops (crossbeam `Backoff` replacement).

#[cfg(not(loom))]
const SPIN_LIMIT: u32 = 6;
#[cfg(not(loom))]
const YIELD_LIMIT: u32 = 10;

/// Backs off in spin loops: a few rounds of busy-spinning, then OS-level
/// yields. Under `--cfg loom` every `snooze` is a scheduler yield point, so
/// spin loops become explorable interleavings instead of wasted time.
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Creates a backoff in the "just started spinning" state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the initial state (call after making progress).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off one step: spins while cheap, yields once spinning has not
    /// helped. Call in loops that wait for another thread's progress.
    #[cfg(not(loom))]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Model-checked builds: a snooze is exactly one scheduling point.
    #[cfg(loom)]
    pub fn snooze(&self) {
        crate::model::thread::yield_now();
    }

    /// Whether spinning has exceeded the yield threshold — callers may then
    /// switch to blocking on a real primitive.
    #[cfg(not(loom))]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }

    /// Model-checked builds: backoff is always "complete" so tests exercise
    /// the blocking path rather than unbounded spin schedules.
    #[cfg(loom)]
    pub fn is_completed(&self) -> bool {
        true
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
