//! The synchronization facade of the Blaze workspace.
//!
//! Every concurrent crate (`blaze-binning`, `blaze-core`, `blaze-frontier`,
//! `blaze-storage`, `blaze-baselines`, `blaze-scaleout`) imports its
//! synchronization primitives — mutexes, condition variables, atomics,
//! threads, and the MPMC queues of the IO/scatter/gather pipeline —
//! exclusively through this crate. The `cargo xtask lint` gate enforces this
//! (direct `std::sync`/`parking_lot`/`crossbeam` imports are rejected
//! outside this crate).
//!
//! Two backends sit behind the facade:
//!
//! * **Normally** the types are thin wrappers over `std::sync` with a
//!   `parking_lot`-flavoured API (`lock()` returns a guard directly; a
//!   poisoned lock propagates the original panic instead of layering a
//!   `PoisonError` on top).
//! * **Under `--cfg loom`** the same names resolve to the `model`
//!   module's cooperatively-scheduled implementations, and
//!   `model::check` explores thread interleavings of a test body
//!   exhaustively (up to a preemption bound, in the style of CHESS /
//!   loom). This is what the `loom_*` integration tests of `blaze-binning`
//!   and `blaze-core` run under:
//!
//!   ```text
//!   RUSTFLAGS="--cfg loom" cargo test -p blaze-binning --test loom_bin --release
//!   ```
//!
//! The model checker is vendored here (the build environment is offline and
//! cannot fetch the real `loom` crate); see `model` for its semantics and
//! the fidelity caveats — in particular, modeled atomics are sequentially
//! consistent, so `Ordering` *choice* bugs are covered by the
//! `// sync-audit:` lint discipline rather than by exploration.

pub mod backoff;
#[cfg(loom)]
pub mod model;
pub mod queue;

#[cfg(not(loom))]
mod std_impl;

pub use backoff::Backoff;

/// Atomic integer and boolean types plus memory-ordering tokens.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(loom)]
    pub use crate::model::atomic::{
        fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
    };
    #[cfg(loom)]
    pub use std::sync::atomic::Ordering;
}

/// Thread spawning, scoped threads, and yielding.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(loom)]
    pub use crate::model::thread::{scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};
}

#[cfg(not(loom))]
pub use std_impl::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(loom)]
pub use model::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomically reference-counted shared pointer.
///
/// Both backends use `std::sync::Arc`: the model checker serializes thread
/// execution, so `Arc`'s internal counters cannot race and need no modeling.
pub use std::sync::Arc;

/// Panic capture that cooperates with the model checker.
pub mod panic {
    use std::any::Any;

    pub use std::panic::resume_unwind;

    /// Catches a panic from `f`, like [`std::panic::catch_unwind`] with
    /// `AssertUnwindSafe` applied (callers isolate panics across an
    /// explicit protocol boundary, e.g. a worker containing a job's panic,
    /// so unwind-safety is their responsibility).
    ///
    /// Under `--cfg loom` there is one crucial difference: the model
    /// scheduler unwinds the threads of an aborted execution with an
    /// internal sentinel payload, and capturing that payload would swallow
    /// the checker's control flow. Such payloads are re-thrown here instead
    /// of returned. Long-lived model threads that catch panics MUST use
    /// this function rather than `std::panic::catch_unwind`.
    pub fn catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send + 'static>> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(value) => Ok(value),
            Err(payload) => {
                #[cfg(loom)]
                if crate::model::is_abort_payload(payload.as_ref()) {
                    std::panic::resume_unwind(payload);
                }
                Err(payload)
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn mutex_try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(7);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn lock_survives_peer_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let r = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert!(r.is_err());
        // parking_lot semantics: the lock is usable after a panicking holder.
        assert_eq!(*m.lock(), 0);
    }
}
