//! Model-checked atomics.
//!
//! Every operation is a scheduling point, so the explorer interleaves
//! atomic accesses at instruction granularity. Values behave sequentially
//! consistently regardless of the `Ordering` argument — see the `model`
//! module docs for why that is an accepted fidelity limit and how the
//! `// sync-audit:` lint covers the gap.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;

use super::scheduler::current;

/// A fence is a pure ordering operation; under sequential consistency it
/// reduces to a scheduling point.
pub fn fence(_order: Ordering) {
    let (sched, me) = current();
    sched.yield_point(me);
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// Model-checked atomic (sequentially consistent; every access is a
        /// scheduling point).
        #[derive(Default)]
        pub struct $name {
            v: UnsafeCell<$ty>,
        }

        // SAFETY: the cell is only accessed by the thread holding the
        // scheduler's execution token (every method yields to the scheduler
        // first), and token transfer synchronizes through a std mutex.
        unsafe impl Send for $name {}
        // SAFETY: as above — accesses are serialized by the scheduler.
        unsafe impl Sync for $name {}

        impl $name {
            /// Creates an atomic initialized to `v`.
            pub fn new(v: $ty) -> Self {
                Self {
                    v: UnsafeCell::new(v),
                }
            }

            fn with<R>(&self, f: impl FnOnce(&mut $ty) -> R) -> R {
                let (sched, me) = current();
                sched.yield_point(me);
                // SAFETY: we hold the execution token between scheduling
                // points, so this is the only live access to the cell.
                f(unsafe { &mut *self.v.get() })
            }

            /// Loads the value.
            pub fn load(&self, _order: Ordering) -> $ty {
                self.with(|v| *v)
            }

            /// Stores `val`.
            pub fn store(&self, val: $ty, _order: Ordering) {
                self.with(|v| *v = val)
            }

            /// Swaps in `val`, returning the previous value.
            pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| std::mem::replace(v, val))
            }

            /// Compare-and-exchange; returns `Ok(previous)` on success.
            pub fn compare_exchange(
                &self,
                expected: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.with(|v| {
                    if *v == expected {
                        *v = new;
                        Ok(expected)
                    } else {
                        Err(*v)
                    }
                })
            }

            /// Weak compare-and-exchange. The model never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                expected: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(expected, new, success, failure)
            }

            /// Fetch-and-update in the style of `std`'s `fetch_update`.
            pub fn fetch_update(
                &self,
                _set_order: Ordering,
                _fetch_order: Ordering,
                mut f: impl FnMut($ty) -> Option<$ty>,
            ) -> Result<$ty, $ty> {
                self.with(|v| match f(*v) {
                    Some(new) => Ok(std::mem::replace(v, new)),
                    None => Err(*v),
                })
            }

            /// Exclusive access without synchronization (requires `&mut`).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.v.get_mut()
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> $ty {
                self.v.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(concat!("model::", stringify!($name)))
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $ty:ty) => {
        model_atomic!($name, $ty);

        impl $name {
            /// Adds, wrapping; returns the previous value.
            pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.wrapping_add(val);
                    prev
                })
            }

            /// Subtracts, wrapping; returns the previous value.
            pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.wrapping_sub(val);
                    prev
                })
            }

            /// Bitwise OR; returns the previous value.
            pub fn fetch_or(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev | val;
                    prev
                })
            }

            /// Bitwise AND; returns the previous value.
            pub fn fetch_and(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev & val;
                    prev
                })
            }

            /// Maximum; returns the previous value.
            pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.max(val);
                    prev
                })
            }

            /// Minimum; returns the previous value.
            pub fn fetch_min(&self, val: $ty, _order: Ordering) -> $ty {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.min(val);
                    prev
                })
            }
        }
    };
}

model_atomic!(AtomicBool, bool);
model_atomic_int!(AtomicU8, u8);
model_atomic_int!(AtomicU32, u32);
model_atomic_int!(AtomicU64, u64);
model_atomic_int!(AtomicUsize, usize);
model_atomic_int!(AtomicI64, i64);

impl AtomicBool {
    /// Bitwise OR; returns the previous value.
    pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
        self.with(|v| {
            let prev = *v;
            *v = prev | val;
            prev
        })
    }

    /// Bitwise AND; returns the previous value.
    pub fn fetch_and(&self, val: bool, _order: Ordering) -> bool {
        self.with(|v| {
            let prev = *v;
            *v = prev & val;
            prev
        })
    }
}
