//! A vendored, preemption-bounded exhaustive model checker for the
//! workspace's concurrency protocols (a miniature `loom`).
//!
//! # What it does
//!
//! [`check`] runs a test body under a cooperative scheduler: every
//! synchronization operation performed through the facade (mutex
//! acquisition, condvar wait/notify, atomic access, queue push/pop, spawn,
//! join, backoff snooze) is a *scheduling point* at which exactly one thread
//! holds the execution token. Wherever more than one thread could run next,
//! the checker records a branch; after each complete execution it backtracks
//! depth-first to the last branch with an untried choice and replays. The
//! test body therefore executes once per distinct schedule, and an assertion
//! failure, panic, or deadlock in *any* schedule fails the test and prints
//! the offending schedule.
//!
//! # Preemption bounding
//!
//! Full interleaving enumeration explodes combinatorially, so exploration is
//! bounded in the style of CHESS (Musuvathi & Qadeer): schedules are
//! explored exhaustively up to [`Config::preemption_bound`] *preemptive*
//! context switches (a switch away from a thread that could have continued;
//! switches forced by blocking are free). Empirically almost all real
//! concurrency bugs manifest within two preemptions; the bound is
//! configurable per test and via the `BLAZE_LOOM_PREEMPTIONS` environment
//! variable.
//!
//! Cooperative yields (`thread::yield_now`, `Backoff::snooze`) are also
//! free, and additionally *deschedule* the caller: another runnable
//! thread, if any, takes the token — loom's yield semantics. A spin loop
//! waiting on a peer therefore alternates with that peer instead of
//! livelocking the default stay-on-current schedule until
//! [`Config::max_steps`].
//!
//! # Fidelity caveats (vs. real `loom`)
//!
//! * Modeled atomics are **sequentially consistent** regardless of the
//!   `Ordering` argument. Interleaving bugs (lost updates, ABA, ordering of
//!   lock hand-offs) are explored; *weak-memory reorderings* are not. The
//!   workspace compensates with the `cargo xtask lint` rule that every
//!   `Ordering::Relaxed`/`SeqCst` site carries a `// sync-audit:`
//!   justification reviewed by a human.
//! * Condition variables never wake spuriously in the model (real ones may);
//!   waiters must still use predicate loops, which the lint-audited code does.
//! * `std::sync::Arc` is used as-is; its refcounts are internally
//!   synchronized and cannot introduce schedules of interest.

pub mod atomic;
mod scheduler;
pub mod sync;
pub mod thread;

use std::sync::Arc;

pub(crate) use scheduler::Scheduler;

/// Exploration limits for [`check_with`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of preemptive context switches per schedule.
    pub preemption_bound: usize,
    /// Safety valve: abort if exploration exceeds this many executions.
    pub max_executions: u64,
    /// Safety valve: abort any single execution longer than this many
    /// scheduling points (catches accidental livelock in the model).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        let preemption_bound = std::env::var("BLAZE_LOOM_PREEMPTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Self {
            preemption_bound,
            max_executions: 2_000_000,
            max_steps: 1_000_000,
        }
    }
}

/// Exploration statistics returned by [`check_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: u64,
    /// Number of branch points in the longest schedule.
    pub max_branches: usize,
}

/// Whether a caught panic payload is the scheduler's internal abort token
/// (used to unwind the model threads of an aborted execution). Code that
/// catches panics inside a model thread — e.g. a worker isolating a
/// panicking job — must re-throw such payloads instead of treating them as
/// application panics, or it would swallow the checker's own control flow.
/// Prefer [`crate::panic::catch_unwind`], which handles this automatically.
pub fn is_abort_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<scheduler::AbortToken>()
}

/// Model-checks `f` under the default [`Config`]; panics if any explored
/// schedule panics, fails an assertion, or deadlocks.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(Config::default(), f)
}

/// Model-checks `f` under an explicit [`Config`].
pub fn check_with<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0u64;
    let mut max_branches = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= config.max_executions,
            "model exploration exceeded {} executions; shrink the model or raise max_executions",
            config.max_executions
        );
        let sched = Scheduler::new(prefix.clone(), config.clone());
        let outcome = sched.run_execution(f.clone());
        max_branches = max_branches.max(outcome.trail.len());
        if let Some(payload) = outcome.panic_payload {
            eprintln!(
                "model check failed on execution {executions} \
                 (schedule: {:?}, {} branch points explored so far)",
                outcome.trail.iter().map(|d| d.chosen).collect::<Vec<_>>(),
                max_branches,
            );
            std::panic::resume_unwind(payload);
        }
        match scheduler::next_prefix(&outcome.trail, config.preemption_bound) {
            Some(next) => prefix = next,
            None => {
                return Report {
                    executions,
                    max_branches,
                }
            }
        }
    }
}
