//! The cooperative scheduler and depth-first schedule explorer.
//!
//! One OS thread exists per model thread, but exactly one of them runs at a
//! time: the scheduler hands an execution token from thread to thread at
//! scheduling points. Token hand-off happens under a real `std::sync::Mutex`
//! (`Scheduler::state`), so everything thread A did before yielding the
//! token *happens-before* everything thread B does after receiving it —
//! which is what makes the model's `UnsafeCell`-based primitives sound.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use super::Config;

/// What a blocked model thread is waiting for. Resources are identified by
/// the address of the primitive, which is stable within one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// Waiting to acquire a mutex (or rwlock, modeled as exclusive).
    Lock(usize),
    /// Waiting on a condition variable.
    Condvar(usize),
    /// Waiting for a thread to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One recorded branch point: a state where more than one thread could run.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Candidate threads in exploration order (default choice first).
    pub candidates: Vec<usize>,
    /// The thread that was chosen.
    pub chosen: usize,
    /// The thread that held the token before this decision, and whether it
    /// was still runnable (a switch away from it is then preemptive).
    prev: usize,
    prev_runnable: bool,
    /// Preemptive switches taken by the schedule before this decision.
    preemptions_before: usize,
}

struct State {
    status: Vec<Status>,
    /// Thread currently holding the execution token.
    current: usize,
    live: usize,
    /// Replayed choices for the branch points of this execution.
    prefix: Vec<usize>,
    trail: Vec<Decision>,
    preemptions: usize,
    steps: u64,
    /// Set when the execution must unwind (user panic or deadlock).
    abort: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
}

/// Sentinel panic payload used to unwind model threads of an aborted
/// execution without reporting them as failures themselves.
pub(crate) struct AbortToken;

/// Result of one complete execution.
pub(crate) struct Outcome {
    pub trail: Vec<Decision>,
    pub panic_payload: Option<Box<dyn Any + Send>>,
}

pub(crate) struct Scheduler {
    state: StdMutex<State>,
    cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
    config: Config,
}

thread_local! {
    /// The execution context of the current OS thread, set while it acts as
    /// a model thread: the scheduler it belongs to and its model thread id.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler and model-thread id of the calling thread.
///
/// # Panics
/// Panics when called outside a `model::check` execution — model primitives
/// cannot be used from unmanaged threads.
pub(crate) fn current() -> (Arc<Scheduler>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            // panic-audit: deliberate usage-error report — the model facade
            // is meaningless outside a `model::check` execution.
            .expect("blaze-sync model primitive used outside model::check")
    })
}

impl Scheduler {
    pub(crate) fn new(prefix: Vec<usize>, config: Config) -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(State {
                status: Vec::new(),
                current: 0,
                live: 0,
                prefix,
                trail: Vec::new(),
                preemptions: 0,
                steps: 0,
                abort: false,
                panic_payload: None,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
            config,
        })
    }

    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        // A model thread that panics mid-update poisons the std mutex; the
        // abort protocol still needs the state to drain the execution.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs one complete execution of `f` and returns its trail.
    pub(crate) fn run_execution(self: Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
        self.spawn_model_thread(move || f());
        // Wait for every model thread to finish (normally or by unwinding).
        {
            let mut state = self.lock_state();
            while state.live > 0 {
                state = self
                    .cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        for handle in self
            .os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            // The model thread has already signalled Finished; this join
            // only reaps the OS thread and cannot block on model state.
            let _ = handle.join();
        }
        let mut state = self.lock_state();
        Outcome {
            trail: std::mem::take(&mut state.trail),
            panic_payload: state.panic_payload.take(),
        }
    }

    /// Registers a new model thread and starts its OS thread. Returns the
    /// model thread id.
    pub(crate) fn spawn_model_thread<F>(self: &Arc<Self>, body: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let id = {
            let mut state = self.lock_state();
            state.status.push(Status::Runnable);
            state.live += 1;
            state.status.len() - 1
        };
        let sched = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("model-{id}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((sched.clone(), id)));
                // Threads other than the root must wait to be scheduled
                // before touching any model state.
                if id != 0 {
                    sched.wait_for_token(id);
                }
                let result = catch_unwind(AssertUnwindSafe(body));
                sched.finish_thread(id, result.err());
                CTX.with(|c| *c.borrow_mut() = None);
            })
            // panic-audit: OS thread exhaustion leaves the checker unable to
            // continue; aborting the test run is the only sensible outcome.
            .expect("failed to spawn model OS thread");
        self.os_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
        id
    }

    fn wait_for_token(&self, me: usize) {
        let mut state = self.lock_state();
        while state.current != me {
            if state.abort {
                drop(state);
                std::panic::panic_any(AbortToken);
            }
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.abort {
            drop(state);
            std::panic::panic_any(AbortToken);
        }
    }

    /// A scheduling point: the calling thread offers to yield the token.
    /// Branch points are recorded wherever another thread could run too.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut state = self.lock_state();
        self.check_abort_and_steps(&mut state);
        let aborted = self.pick_next(&mut state, me);
        let next = state.current;
        drop(state);
        if aborted {
            self.cv.notify_all();
            std::panic::panic_any(AbortToken);
        }
        if next != me {
            self.cv.notify_all();
            self.wait_for_token(me);
        }
    }

    /// A cooperative scheduling point: the calling thread *asks* to be
    /// descheduled (`thread::yield_now`, `Backoff::snooze`). Mirrors
    /// loom's yield semantics: some other runnable thread, if any, takes
    /// the token, and the switch is voluntary — it neither consumes the
    /// preemption budget nor is pruned by it. Without this, a spin loop
    /// waiting on a peer livelocks the explorer's default schedule (the
    /// default choice at an ordinary [`yield_point`](Self::yield_point)
    /// is "continue the current thread"), burning `max_steps` on every
    /// execution; a spinning thread cannot make progress by itself, so
    /// replaying it before the peer runs is never interesting.
    pub(crate) fn yield_cooperative(&self, me: usize) {
        let mut state = self.lock_state();
        self.check_abort_and_steps(&mut state);
        let aborted = self.pick_next_yielding(&mut state, me);
        let next = state.current;
        drop(state);
        if aborted {
            self.cv.notify_all();
            std::panic::panic_any(AbortToken);
        }
        if next != me {
            self.cv.notify_all();
            self.wait_for_token(me);
        }
    }

    /// Chooses the next thread for a cooperative yield: the yielder is
    /// excluded whenever another thread is runnable. Falls back to
    /// [`pick_next`](Self::pick_next) (which also handles deadlock
    /// detection) when the yielder is the only runnable thread.
    fn pick_next_yielding(&self, state: &mut State, me: usize) -> bool {
        let others: Vec<usize> = state
            .status
            .iter()
            .enumerate()
            .filter(|&(i, s)| *s == Status::Runnable && i != me)
            .map(|(i, _)| i)
            .collect();
        if others.is_empty() {
            return self.pick_next(state, me);
        }
        if others.len() == 1 {
            // Forced hand-off: no branch point, and voluntary, so no
            // preemption is charged.
            state.current = others[0];
            return false;
        }
        let idx = state.trail.len();
        let chosen = match state.prefix.get(idx) {
            Some(&replayed) => replayed,
            None => others[0],
        };
        debug_assert!(others.contains(&chosen), "replayed choice must be runnable");
        state.trail.push(Decision {
            candidates: others,
            chosen,
            prev: me,
            // Voluntary switch: alternatives at this decision are free for
            // the preemption-bounded backtracker too.
            prev_runnable: false,
            preemptions_before: state.preemptions,
        });
        state.current = chosen;
        false
    }

    /// Blocks the calling thread on `resource` and schedules someone else.
    /// Returns once the thread has been unblocked *and* rescheduled.
    pub(crate) fn block_on(&self, me: usize, resource: Resource) {
        let mut state = self.lock_state();
        self.check_abort_and_steps(&mut state);
        state.status[me] = Status::Blocked(resource);
        let aborted = self.pick_next(&mut state, me);
        drop(state);
        self.cv.notify_all();
        if aborted {
            std::panic::panic_any(AbortToken);
        }
        self.wait_for_token(me);
    }

    /// Marks every thread blocked on `resource` runnable again. The waker
    /// keeps the token; woken threads run when a later decision picks them.
    pub(crate) fn unblock_all(&self, resource: Resource) {
        let mut state = self.lock_state();
        for status in state.status.iter_mut() {
            if *status == Status::Blocked(resource) {
                *status = Status::Runnable;
            }
        }
    }

    /// Marks the lowest-id thread blocked on `resource` runnable (condvar
    /// `notify_one`). Which waiter a real condvar wakes is unspecified;
    /// lowest-id is a deterministic choice the explorer can replay.
    pub(crate) fn unblock_one(&self, resource: Resource) {
        let mut state = self.lock_state();
        for status in state.status.iter_mut() {
            if *status == Status::Blocked(resource) {
                *status = Status::Runnable;
                break;
            }
        }
    }

    /// Whether thread `target` has finished (for `join`).
    pub(crate) fn is_finished(&self, target: usize) -> bool {
        matches!(self.lock_state().status[target], Status::Finished)
    }

    /// Aborts the execution and waits for every thread in `targets` to
    /// finish. Used by a panicking `thread::scope`: the scope's stack frame
    /// is about to unwind, so threads borrowing from it must exit first.
    ///
    /// Once `abort` is set and the condvar is broadcast, every other live
    /// thread unwinds with [`AbortToken`] at its next token wait — no token
    /// hand-off is needed — and each finish broadcasts again, so this wait
    /// always terminates.
    pub(crate) fn abort_and_drain(&self, targets: &[usize]) {
        let mut state = self.lock_state();
        state.abort = true;
        self.cv.notify_all();
        while targets
            .iter()
            .any(|&t| !matches!(state.status[t], Status::Finished))
        {
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn finish_thread(&self, me: usize, panic_payload: Option<Box<dyn Any + Send>>) {
        let mut state = self.lock_state();
        state.status[me] = Status::Finished;
        state.live -= 1;
        match panic_payload {
            Some(payload) if payload.is::<AbortToken>() => {
                // Unwound as part of an abort someone else initiated.
            }
            Some(payload) => {
                if state.panic_payload.is_none() {
                    state.panic_payload = Some(payload);
                }
                state.abort = true;
            }
            None => {}
        }
        // Wake joiners of this thread.
        for status in state.status.iter_mut() {
            if *status == Status::Blocked(Resource::Join(me)) {
                *status = Status::Runnable;
            }
        }
        if state.live > 0 && !state.abort {
            // A deadlock among the survivors is recorded in the state; this
            // thread is exiting, so it must not unwind again itself.
            let _ = self.pick_next(&mut state, me);
        }
        drop(state);
        self.cv.notify_all();
    }

    fn check_abort_and_steps(&self, state: &mut State) {
        if state.abort {
            std::panic::panic_any(AbortToken);
        }
        state.steps += 1;
        if state.steps > self.config.max_steps {
            state.abort = true;
            if state.panic_payload.is_none() {
                state.panic_payload = Some(Box::new(format!(
                    "model execution exceeded {} scheduling points; \
                     likely an unbounded spin outside facade primitives",
                    self.config.max_steps
                )));
            }
            self.cv.notify_all();
            std::panic::panic_any(AbortToken);
        }
    }

    /// Chooses the next thread to hold the token. `me` is the thread at the
    /// scheduling point (it may or may not still be runnable). Returns
    /// `true` when the execution must abort (deadlock detected).
    fn pick_next(&self, state: &mut State, me: usize) -> bool {
        let runnable: Vec<usize> = state
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if state.live == 0 || state.status.iter().all(|s| *s == Status::Finished) {
                return false;
            }
            // Every live thread is blocked: deadlock.
            let held: Vec<String> = state
                .status
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Blocked(r) => Some(format!("thread {i} blocked on {r:?}")),
                    _ => None,
                })
                .collect();
            state.abort = true;
            if state.panic_payload.is_none() {
                state.panic_payload =
                    Some(Box::new(format!("deadlock detected: {}", held.join(", "))));
            }
            return true;
        }
        let me_runnable = state.status[me] == Status::Runnable;
        if runnable.len() == 1 {
            // Forced choice: no branch point.
            let chosen = runnable[0];
            if me_runnable && chosen != me {
                state.preemptions += 1;
            }
            state.current = chosen;
            return false;
        }
        // Exploration order: default choice first (continue the current
        // thread when possible — zero preemptions), then the rest ascending.
        let default = if me_runnable { me } else { runnable[0] };
        let mut candidates = Vec::with_capacity(runnable.len());
        candidates.push(default);
        candidates.extend(runnable.iter().copied().filter(|&t| t != default));

        let idx = state.trail.len();
        let chosen = match state.prefix.get(idx) {
            Some(&replayed) => replayed,
            None => default,
        };
        debug_assert!(
            candidates.contains(&chosen),
            "replayed choice must be runnable"
        );
        let preemptive = me_runnable && chosen != me;
        state.trail.push(Decision {
            candidates,
            chosen,
            prev: me,
            prev_runnable: me_runnable,
            preemptions_before: state.preemptions,
        });
        if preemptive {
            state.preemptions += 1;
        }
        state.current = chosen;
        false
    }
}

/// Computes the next schedule prefix to explore, depth-first: backtracks to
/// the deepest branch point with an untried candidate that fits within the
/// preemption bound. Returns `None` when the space is exhausted.
pub(crate) fn next_prefix(trail: &[Decision], preemption_bound: usize) -> Option<Vec<usize>> {
    for i in (0..trail.len()).rev() {
        let d = &trail[i];
        let pos = d
            .candidates
            .iter()
            .position(|&c| c == d.chosen)
            // panic-audit: `Decision::chosen` is always appended from its own
            // candidate set; absence would be checker corruption.
            .expect("chosen candidate recorded in its own decision");
        for &alt in &d.candidates[pos + 1..] {
            let alt_preemptive = d.prev_runnable && alt != d.prev;
            if d.preemptions_before + usize::from(alt_preemptive) <= preemption_bound {
                let mut prefix: Vec<usize> = trail[..i].iter().map(|d| d.chosen).collect();
                prefix.push(alt);
                return Some(prefix);
            }
        }
    }
    None
}
