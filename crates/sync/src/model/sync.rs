//! Model-checked lock and condition-variable implementations.
//!
//! All data lives in `UnsafeCell`s that are only ever touched by the thread
//! holding the scheduler's execution token; token hand-off goes through the
//! scheduler's internal `std::sync::Mutex`, which provides the
//! happens-before edge that makes this sound (see `scheduler` module docs).

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

use super::scheduler::{current, Resource};

/// A model-checked mutual-exclusion lock.
pub struct Mutex<T> {
    held: UnsafeCell<bool>,
    data: UnsafeCell<T>,
}

// SAFETY: `held` and `data` are only accessed by the model thread currently
// holding the scheduler's execution token; the token transfer synchronizes
// through the scheduler's std mutex, so no two threads access the cells
// concurrently and all accesses are ordered.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — the scheduler serializes every access to the cells.
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for the model [`Mutex`].
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            held: UnsafeCell::new(false),
            data: UnsafeCell::new(value),
        }
    }

    fn resource(&self) -> Resource {
        Resource::Lock(self as *const _ as *const () as usize)
    }

    fn held(&self) -> bool {
        // SAFETY: caller is the token holder (all public paths go through a
        // scheduling point first), so the cell cannot be accessed
        // concurrently.
        unsafe { *self.held.get() }
    }

    fn set_held(&self, v: bool) {
        // SAFETY: as in `held` — serialized by the execution token.
        unsafe { *self.held.get() = v }
    }

    pub(crate) fn raw_lock(&self) {
        let (sched, me) = current();
        loop {
            sched.yield_point(me);
            if !self.held() {
                self.set_held(true);
                return;
            }
            sched.block_on(me, self.resource());
        }
    }

    pub(crate) fn raw_unlock(&self) {
        let (sched, _me) = current();
        self.set_held(false);
        sched.unblock_all(self.resource());
    }

    /// Acquires the lock, blocking (in model time) until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw_lock();
        MutexGuard { mutex: self }
    }

    /// Acquires the lock only if it is free at this scheduling point.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let (sched, me) = current();
        sched.yield_point(me);
        if self.held() {
            return None;
        }
        self.set_held(true);
        Some(MutexGuard { mutex: self })
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("model::Mutex")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves this thread holds the model lock, and the
        // scheduler serializes execution, so no aliasing access exists.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive by lock ownership + serial
        // execution.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.raw_unlock();
    }
}

/// A model-checked condition variable.
#[derive(Default)]
pub struct Condvar {
    _private: (),
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Self { _private: () }
    }

    fn resource(&self) -> Resource {
        Resource::Condvar(self as *const _ as *const () as usize)
    }

    /// Atomically releases the guard's lock and blocks until notified, then
    /// re-acquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let (sched, me) = current();
        guard.mutex.raw_unlock();
        sched.block_on(me, self.resource());
        guard.mutex.raw_lock();
    }

    /// Wakes one waiting thread (the model deterministically picks the
    /// lowest-id waiter).
    pub fn notify_one(&self) {
        let (sched, _me) = current();
        sched.unblock_one(self.resource());
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        let (sched, _me) = current();
        sched.unblock_all(self.resource());
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("model::Condvar")
    }
}

/// A model-checked reader-writer lock.
///
/// Readers are modeled as exclusive: this collapses reader-reader
/// concurrency (which cannot produce data races) but fully explores
/// reader-writer and writer-writer interleavings. It keeps the model's
/// state space small where the real code uses `RwLock` only on cold paths.
pub struct RwLock<T> {
    inner: Mutex<T>,
}

/// Shared-access guard for the model [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: MutexGuard<'a, T>,
}

/// Exclusive-access guard for the model [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: MutexGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    /// Acquires shared access (exclusive in the model; see type docs).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.lock(),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.lock(),
        }
    }

    /// Consumes the lock and returns its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("model::RwLock")
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
