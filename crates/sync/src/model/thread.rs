//! Model-checked thread spawning, joining, and scoped threads.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use super::scheduler::{current, Resource};

/// Handle to a model thread; `join` blocks (in model time) until it exits.
pub struct JoinHandle<T> {
    target: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread. The new thread becomes runnable immediately and a
/// branch point follows, so the explorer covers both "child runs first" and
/// "parent continues" schedules.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = current();
    let result = Arc::new(StdMutex::new(None));
    let slot = result.clone();
    let target = sched.spawn_model_thread(move || {
        let value = f();
        *slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
    });
    sched.yield_point(me);
    JoinHandle { target, result }
}

/// Yields the token cooperatively: another runnable thread, if any, runs
/// next (loom's `yield_now` semantics — required for spin loops that wait
/// on a peer to terminate under the explorer's stay-on-current default).
pub fn yield_now() {
    let (sched, me) = current();
    sched.yield_cooperative(me);
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// The `Err` arm of the standard API is unreachable here: a panicking
    /// model thread aborts the whole execution and fails the test, so a
    /// completed `join` always has a value.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let (sched, me) = current();
        while !sched.is_finished(self.target) {
            sched.block_on(me, Resource::Join(self.target));
        }
        let value = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            // panic-audit: `block_on(Join)` returns only once the target
            // finished, and a finished thread always deposits its result.
            .expect("finished model thread stored its result");
        Ok(value)
    }
}

/// Model-checked scoped threads, mirroring `std::thread::scope`: threads
/// spawned on the [`Scope`] may borrow non-`'static` data, and every one of
/// them has exited by the time `scope` returns.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    let scope = Scope {
        pending: StdMutex::new(Vec::new()),
        _scope: PhantomData,
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    let pending: Vec<usize> = std::mem::take(
        &mut *scope
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    let (sched, me) = current();
    match result {
        Ok(value) => {
            // Implicitly join the threads the closure did not join itself;
            // these joins are ordinary scheduling points.
            for target in pending {
                while !sched.is_finished(target) {
                    sched.block_on(me, Resource::Join(target));
                }
            }
            value
        }
        Err(payload) => {
            // The scope is unwinding: the borrowed stack frames are about
            // to die, so the execution aborts and every pending thread must
            // exit before the panic continues.
            sched.abort_and_drain(&pending);
            resume_unwind(payload)
        }
    }
}

/// Spawn surface handed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    /// Model-thread ids spawned in this scope and not yet joined.
    pending: StdMutex<Vec<usize>>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a model thread that may borrow from `'env`.
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let (sched, me) = current();
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot = result.clone();
        let body: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let value = f();
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
        });
        // SAFETY: `scope` guarantees this closure has finished running (via
        // join or abort-and-drain) before any `'scope`/`'env` borrow it
        // captures can dangle, so erasing the lifetime for the spawn API is
        // sound — the same argument `std::thread::scope` relies on.
        let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
        let target = sched.spawn_model_thread(move || body());
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(target);
        // Branch point: the child may run before the parent continues.
        sched.yield_point(me);
        ScopedJoinHandle {
            target,
            result,
            pending: &self.pending,
        }
    }
}

/// Handle to a scoped model thread.
pub struct ScopedJoinHandle<'scope, T> {
    target: usize,
    result: Arc<StdMutex<Option<T>>>,
    pending: &'scope StdMutex<Vec<usize>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result. As with
    /// [`JoinHandle::join`], the `Err` arm is unreachable in the model.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        let (sched, me) = current();
        while !sched.is_finished(self.target) {
            sched.block_on(me, Resource::Join(self.target));
        }
        self.pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .retain(|&t| t != self.target);
        let value = self
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            // panic-audit: `block_on(Join)` returns only once the target
            // finished, and a finished thread always deposits its result.
            .expect("finished model thread stored its result");
        Ok(value)
    }
}
