//! MPMC queues for the IO→scatter→gather pipeline.
//!
//! These replace `crossbeam::queue::{SegQueue, ArrayQueue}`. They are built
//! on the facade's own [`Mutex`], which has two consequences:
//! the hand-off of a popped element is synchronized by the lock (no relaxed
//! publication to audit), and under `--cfg loom` the queues are model-checked
//! for free, because the model's mutex is what serializes them.
//!
//! The pipeline pushes and pops whole buffers (64 KiB IO buffers, multi-KiB
//! bin buffers), so one short critical section per element is far off the
//! hot path; a lock-free ring is deliberately *not* used here until a
//! profile demands it.

use std::collections::VecDeque;

use crate::Mutex;

/// An unbounded MPMC FIFO queue (crossbeam `SegQueue` replacement).
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends `value` at the tail.
    pub fn push(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Removes the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue held no elements at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue")
            .field("len", &self.len())
            .finish()
    }
}

/// A bounded MPMC FIFO queue (crossbeam `ArrayQueue` replacement).
pub struct ArrayQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> ArrayQueue<T> {
    /// Creates an empty queue holding at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ArrayQueue capacity must be non-zero");
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Appends `value` at the tail, or returns it if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut q = self.inner.lock();
        if q.len() == self.capacity {
            return Err(value);
        }
        q.push_back(value);
        Ok(())
    }

    /// Removes the head element, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued elements at the time of the call.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue held no elements at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn seg_queue_is_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_bounds_capacity() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let q = std::sync::Arc::new(SegQueue::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..1000u32 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut all: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..4000).collect::<Vec<_>>());
    }
}
