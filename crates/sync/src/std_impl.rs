//! The standard-library backend: `std::sync` primitives behind a
//! `parking_lot`-flavoured API.
//!
//! The facade intentionally drops lock poisoning: a panic while holding a
//! lock is already propagated to the joining thread by the engine's scoped
//! thread pools, so layering `PoisonError` on every subsequent acquisition
//! only turns one failure into many. `lock()`/`read()`/`write()` therefore
//! recover the guard from a poisoned lock and continue, exactly as
//! `parking_lot` behaves.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can move the std guard out and back
    // through std's by-value wait API while the caller keeps `&mut` access.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex and returns its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            // panic-audit: `inner` is only `None` inside `Condvar::wait`, which
            // holds the guard exclusively; reaching `None` here is impossible.
            .expect("guard present outside Condvar::wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // panic-audit: as in `deref` — `None` only occurs inside `wait`.
        self.inner
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s lock and blocks until notified; the
    /// lock is re-acquired before returning. Spurious wakeups are possible,
    /// so callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            // panic-audit: the guard handed to `wait` always carries its inner
            // std guard; only this function ever takes it, and it restores it.
            .expect("guard present outside Condvar::wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    /// Consumes the lock and returns its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}
