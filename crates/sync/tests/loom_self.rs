//! Self-validation of the vendored model checker: it must find seeded
//! concurrency bugs (lost updates, deadlock) and must pass correct
//! protocols while actually exploring more than one schedule.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p blaze-sync --test loom_self --release`
#![cfg(loom)]

use blaze_sync::atomic::{AtomicU64, Ordering};
use blaze_sync::model::{check, check_with, Config};
use blaze_sync::{thread, Arc, Condvar, Mutex};

fn small(bound: usize) -> Config {
    Config {
        preemption_bound: bound,
        ..Config::default()
    }
}

/// The classic lost update: unsynchronized load-modify-store from two
/// threads. The checker must find the schedule where one increment vanishes.
#[test]
fn finds_lost_update() {
    let result = std::panic::catch_unwind(|| {
        check_with(small(2), || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    thread::spawn(move || {
                        // sync-audit: deliberately racy read-modify-write —
                        // this test asserts the checker catches it.
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "increment lost");
        });
    });
    assert!(result.is_err(), "checker failed to find the lost update");
}

/// The same increments through a fetch_add (atomic RMW): no schedule loses
/// one, and the explorer visits more than a single interleaving.
#[test]
fn atomic_rmw_increments_survive_all_schedules() {
    let report = check_with(small(2), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Mutex-protected increments: correct under every schedule.
#[test]
fn mutex_protects_increments() {
    let report = check_with(small(2), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    *counter.lock() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// Opposite lock-order acquisition: the checker must report the deadlock.
#[test]
fn detects_lock_order_deadlock() {
    let result = std::panic::catch_unwind(|| {
        check_with(small(2), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join().unwrap();
        });
    });
    let payload = result.expect_err("checker failed to find the deadlock");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// Condvar handoff with a predicate loop: correct under every schedule,
/// including notify-before-wait (no missed wakeups thanks to the mutex).
#[test]
fn condvar_predicate_loop_never_hangs() {
    let report = check_with(small(2), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.executions > 1, "explored only one schedule");
}

/// The explorer actually covers both completion orders of two racing
/// threads (observed via harness-side recording across executions).
#[test]
fn explores_both_orders() {
    use std::sync::atomic::AtomicBool as HarnessBool;
    let saw_a_first = Arc::new(HarnessBool::new(false));
    let saw_b_first = Arc::new(HarnessBool::new(false));
    let (sa, sb) = (saw_a_first.clone(), saw_b_first.clone());
    check_with(small(2), move || {
        let winner = Arc::new(Mutex::new(None::<u8>));
        let handles: Vec<_> = [0u8, 1u8]
            .into_iter()
            .map(|id| {
                let winner = winner.clone();
                thread::spawn(move || {
                    winner.lock().get_or_insert(id);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let won = winner.lock().expect("one thread won");
        match won {
            0 => sa.store(true, std::sync::atomic::Ordering::Relaxed),
            _ => sb.store(true, std::sync::atomic::Ordering::Relaxed),
        }
    });
    assert!(
        saw_a_first.load(std::sync::atomic::Ordering::Relaxed)
            && saw_b_first.load(std::sync::atomic::Ordering::Relaxed),
        "exploration missed a completion order"
    );
}

/// Scoped threads join implicitly and propagate borrowed-state updates.
#[test]
fn scoped_threads_join_before_scope_returns() {
    check_with(small(2), || {
        let counter = Mutex::new(0u64);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    *counter.lock() += 1;
                });
            }
        });
        assert_eq!(
            *counter.lock(),
            2,
            "scope returned before children finished"
        );
    });
}

/// The MPMC queues of the facade are model-checked for free (they are built
/// on the model mutex): concurrent pushes never drop an element.
#[test]
fn queue_pushes_all_arrive() {
    let report = check(|| {
        let q = Arc::new(blaze_sync::queue::SegQueue::new());
        let handles: Vec<_> = (0..2u64)
            .map(|id| {
                let q = q.clone();
                thread::spawn(move || q.push(id))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
        assert!(q.pop().is_none());
    });
    assert!(report.executions > 1);
}
