//! Workspace-wide constants.
//!
//! Blaze reads disk-resident graphs in fixed-size pages and merges at most a
//! small number of contiguous pages per IO request; these constants pin the
//! values used throughout the paper (Section IV-C).

/// Size of one disk page in bytes. All on-disk layouts, IO requests, and the
/// RAID-0 stripe unit use this granularity.
pub const PAGE_SIZE: usize = 4096;

/// Number of 4-byte edge entries (neighbor vertex ids) that fit in one page.
pub const EDGES_PER_PAGE: usize = PAGE_SIZE / 4;

/// Maximum number of contiguous pages merged into a single IO request.
///
/// The paper finds that on fast NVMe drives merging beyond four pages stops
/// paying off: 4 KiB random IO is already fast, and large requests inflate
/// asynchronous-IO submission time (Section IV-C).
pub const MAX_MERGED_PAGES: usize = 4;

/// Cache line size assumed by the indirection-based graph index (Figure 6).
pub const CACHE_LINE: usize = 64;

/// Number of 4-byte vertex degrees packed into one cache line of the
/// indirection index (Figure 6).
pub const DEGREES_PER_LINE: usize = CACHE_LINE / 4;

/// Default number of bins for online binning (Section V-E: "one thousand
/// bins ... will provide good performance in general").
pub const DEFAULT_BIN_COUNT: usize = 1024;

/// Default ratio of total bin space to input graph size (Section IV-A:
/// "0.05x of the input graph size for bin space").
pub const DEFAULT_BIN_SPACE_RATIO: f64 = 0.05;

/// Default capacity of the per-thread staging buffer, in records per bin.
/// Mirrors the "small fixed size, per-CPU buffer" of propagation blocking.
pub const DEFAULT_STAGING_RECORDS: usize = 64;

/// Default amount of memory reserved for IO buffers (Section IV-F uses
/// 64 MiB for all workloads; we scale with the 1/1024-scale datasets).
pub const DEFAULT_IO_BUFFER_BYTES: usize = 4 << 20;

/// Default per-thread grain of the in-memory vertex-map phase: a frontier
/// smaller than `grain * threads` members runs serially, since forking
/// scoped threads costs more than the map itself at that size. With the
/// default four compute workers (two scatter + two gather) this reproduces
/// the engine's historical fixed serial threshold of 2048.
pub const DEFAULT_VERTEX_MAP_GRAIN: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_holds_whole_edges() {
        assert_eq!(PAGE_SIZE % 4, 0);
        assert_eq!(EDGES_PER_PAGE * 4, PAGE_SIZE);
    }

    #[test]
    fn cache_line_holds_whole_degrees() {
        assert_eq!(CACHE_LINE % 4, 0);
        assert_eq!(DEGREES_PER_LINE, 16);
    }
}
