//! Error handling for the Blaze workspace.

use std::fmt;

/// Unified error type for storage, graph-format, and engine failures.
#[derive(Debug)]
pub enum BlazeError {
    /// An underlying IO operation failed.
    Io(std::io::Error),
    /// A file or byte stream did not match the expected on-disk format.
    Format(String),
    /// A configuration value was invalid (e.g. zero bins, zero threads).
    Config(String),
    /// The engine reached an inconsistent internal state.
    Engine(String),
    /// A request addressed a page or byte range outside the device.
    OutOfRange {
        offset: u64,
        len: u64,
        device_len: u64,
    },
}

impl fmt::Display for BlazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlazeError::Io(e) => write!(f, "io error: {e}"),
            BlazeError::Format(m) => write!(f, "format error: {m}"),
            BlazeError::Config(m) => write!(f, "configuration error: {m}"),
            BlazeError::Engine(m) => write!(f, "engine error: {m}"),
            BlazeError::OutOfRange {
                offset,
                len,
                device_len,
            } => write!(
                f,
                "request [{offset}, {offset}+{len}) exceeds device length {device_len}"
            ),
        }
    }
}

impl std::error::Error for BlazeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlazeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BlazeError {
    fn from(e: std::io::Error) -> Self {
        BlazeError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, BlazeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = BlazeError::OutOfRange {
            offset: 4096,
            len: 8192,
            device_len: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("exceeds"), "{s}");
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: BlazeError = io.into();
        assert!(matches!(e, BlazeError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
