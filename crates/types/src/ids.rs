//! Identifier types.
//!
//! Blaze is a semi-external engine: vertex metadata lives in memory, so vertex
//! ids are kept at 32 bits (the paper's largest graph, hyperlink14, has 1.7 B
//! vertices — still within `u32`). Edge offsets are 64-bit because edge counts
//! exceed 4 B on large graphs.

/// A vertex identifier. Dense in `0..num_vertices`.
pub type VertexId = u32;

/// A global page number within the striped adjacency file.
pub type PageId = u64;

/// A *device-local* page number: the index of a page within one device of a
/// striped array. Global page `p` on an `n`-device array lives on device
/// `p % n` at local page `p / n`, so local ids are meaningless without the
/// device they belong to. APIs that take or return local pages (request
/// merging after `partition_pages`, `read_local_run`) use this alias to keep
/// the two spaces from being confused.
pub type LocalPageId = u64;

/// Index of a device within a [`StripedStorage`] array.
///
/// [`StripedStorage`]: https://docs.rs/blaze-storage
pub type DeviceId = usize;

/// A global edge offset (index into the on-disk neighbor stream).
pub type EdgeOffset = u64;
