//! Common identifiers, constants, errors, and work-trace types shared by every
//! crate in the Blaze workspace.
//!
//! The types here are deliberately small and dependency-free so that the
//! storage, graph, engine, baseline, and performance-model crates can all
//! exchange data without depending on each other.

// The unsafe-audit rule (cargo xtask lint) keys off this: crates that
// need no unsafe code forbid it outright, so the audit scope cannot
// silently grow.
#![forbid(unsafe_code)]

pub mod constants;
pub mod error;
pub mod ids;
pub mod rng;
pub mod trace;
pub mod util;

pub use constants::*;
pub use error::{BlazeError, Result};
pub use ids::{DeviceId, EdgeOffset, LocalPageId, PageId, VertexId};
pub use rng::SplitMix64;
pub use trace::{EnginePhase, IterationTrace, QueryTrace};
pub use util::CachePadded;
