//! Seedable deterministic PRNG for graph generation and tests.
//!
//! Replaces the external `rand` crate for the workspace's narrow needs:
//! reproducible streams of uniform integers and floats. SplitMix64
//! (Steele, Lea & Flood, OOPSLA'14) passes BigCrush, is trivially seedable
//! from a single `u64`, and has no state-size or API baggage.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub const fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero. The modulo
    /// bias is below 2^-32 for every bound the workspace uses.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() requires a non-zero bound");
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below_usize(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
