//! Work traces emitted by the functional engines and consumed by the
//! performance model (`blaze-perfmodel`).
//!
//! The reproduction runs on arbitrary CI hardware, where wall-clock times of a
//! multi-threaded pipeline are meaningless (a single-core box serializes every
//! schedule, hiding all load-imbalance phenomena). Instead, each engine
//! records *how much work of each kind* every iteration performed — IO bytes
//! and request counts per device, edges scattered, bin records gathered,
//! messages per thread — and the performance model replays those quantities
//! on a virtual machine with the paper's core count and device profiles.
//! All quantities in these structs are **measured** from real executions of
//! the real algorithms; only the time axis is modeled.

/// A named phase of engine execution, used to attribute modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// Transforming the vertex frontier into the page frontier.
    FrontierTransform,
    /// Reading pages from the device array.
    Io,
    /// Scatter: decoding pages and appending bin records.
    Scatter,
    /// Gather: applying bin records to vertex data.
    Gather,
    /// FlashGraph-style end-of-iteration message processing.
    MessageProcessing,
    /// In-memory vertex map.
    VertexMap,
}

/// Work performed by one iteration (one `EdgeMap` round) of a query.
#[derive(Debug, Clone, Default)]
pub struct IterationTrace {
    /// Bytes read from each device during this iteration.
    pub io_bytes_per_device: Vec<u64>,
    /// Number of IO requests issued to each device.
    pub io_requests_per_device: Vec<u64>,
    /// Of the requests above, how many were sequential with their predecessor
    /// (per device). Drives the seq/rand bandwidth split of the device model.
    pub io_sequential_requests_per_device: Vec<u64>,
    /// Number of frontier vertices at the start of the iteration.
    pub frontier_size: u64,
    /// Total edges examined by scatter (i.e. `scatter`+`cond` evaluations).
    pub edges_processed: u64,
    /// Total bin records produced (edges that passed `cond`).
    pub records_produced: u64,
    /// Records destined to each bin. Gather work is balanced across threads
    /// at bin granularity, so the max/mean of this vector measures residual
    /// gather imbalance.
    pub records_per_bin: Vec<u64>,
    /// FlashGraph only: messages queued to each computation thread
    /// (`thread = dst % nthreads`). The max of this vector is the straggler.
    pub messages_per_thread: Vec<u64>,
    /// Number of vertices touched by the in-memory vertex-map phase.
    pub vertex_map_size: u64,
    /// Number of atomic read-modify-write operations issued (sync variant
    /// and FlashGraph-style engines; zero for online binning).
    pub atomic_ops: u64,
    /// Number of page-cache hits (the engine's clock cache or FlashGraph's
    /// LRU cache); these pages cost no IO.
    pub cache_hit_pages: u64,
    /// Number of page-cache lookups that missed and went to the device.
    /// Zero when no cache is configured.
    pub cache_miss_pages: u64,
    /// Number of resident pages the cache evicted while absorbing this
    /// iteration's fills.
    pub cache_evictions: u64,
    /// Cache hits that fell in the graph's hot (hub) page region — the
    /// pages a degree-aware layout packed to the front of the stream.
    pub cache_hot_hit_pages: u64,
    /// Fills the cache admitted with a hot-region second-chance credit.
    pub cache_hot_admits: u64,
    /// Pages this job received from another job's in-flight (or recently
    /// retained) device read via the scan-sharing flight table; these
    /// pages cost no device IO for this job.
    pub shared_hit_pages: u64,
    /// Bytes corresponding to `shared_hit_pages` — the device IO this job
    /// avoided by subscribing to other jobs' flights.
    pub shared_bytes: u64,
    /// Scan-sharing flights this job led (device reads it issued on
    /// behalf of itself plus any subscribers).
    pub flights_led: u64,
    /// Records per bin buffer in the binning configuration that produced
    /// this trace (0 when binning was not used). Drives the bin-handoff
    /// cost of the performance model.
    pub bin_buffer_capacity: u64,
    /// Maximum in-flight IO depth observed on any device at submission
    /// time (1 for the synchronous backend; 0 when no requests were
    /// issued).
    pub io_max_in_flight: u64,
    /// Mean in-flight IO depth over submissions (0.0 when no requests
    /// were issued).
    pub io_mean_in_flight: f64,
    /// Per-request service-time histogram across devices, log-scale:
    /// bucket `i` counts requests that took `[4^i, 4^(i+1))` µs. Empty
    /// when no requests were issued.
    pub io_latency_buckets: Vec<u64>,
    /// Nanoseconds scatter workers spent decoding pages and staging
    /// records, summed across workers (so it can exceed wall time).
    pub scatter_ns: u64,
    /// Nanoseconds gather workers spent applying full bins, summed across
    /// workers (zero for the sync variant, which gathers inline).
    pub gather_ns: u64,
    /// Nanoseconds scatter workers spent idle waiting for filled buffers —
    /// the compute-side view of an IO-bound iteration.
    pub io_wait_ns: u64,
    /// Records merged away by scatter-side combining before they reached a
    /// bin; `records_produced` counts the post-combine stream, so the
    /// pre-combine count is the sum of the two.
    pub records_combined: u64,
    /// Whether this trace records one asynchronous priority-frontier round
    /// (`edge_map_async`) instead of a barriered superstep.
    pub async_round: bool,
    /// Async rounds only: the priority bucket the round's batch was drained
    /// from.
    pub async_batch_priority: u64,
    /// Async rounds only: vertices the round's gathers pushed into the
    /// priority frontier.
    pub async_activations: u64,
    /// Async rounds only: pushes that collapsed into an already-queued
    /// vertex (the frontier's duplicate suppression).
    pub async_dedup_skipped: u64,
}

impl IterationTrace {
    /// Creates an empty trace for an engine running over `num_devices`.
    pub fn new(num_devices: usize) -> Self {
        Self {
            io_bytes_per_device: vec![0; num_devices],
            io_requests_per_device: vec![0; num_devices],
            io_sequential_requests_per_device: vec![0; num_devices],
            ..Default::default()
        }
    }

    /// Total bytes read across all devices.
    pub fn total_io_bytes(&self) -> u64 {
        self.io_bytes_per_device.iter().sum()
    }

    /// Total IO requests across all devices.
    pub fn total_io_requests(&self) -> u64 {
        self.io_requests_per_device.iter().sum()
    }

    /// Max − min of per-device IO bytes: the skewed-IO metric of Figure 3.
    pub fn io_skew_bytes(&self) -> u64 {
        match (
            self.io_bytes_per_device.iter().max(),
            self.io_bytes_per_device.iter().min(),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Ratio of the busiest thread's messages to the mean: the
    /// skewed-computation metric of Section III-A. Returns 1.0 when no
    /// messages were recorded.
    pub fn message_skew(&self) -> f64 {
        let total: u64 = self.messages_per_thread.iter().sum();
        let n = self.messages_per_thread.len();
        if total == 0 || n == 0 {
            return 1.0;
        }
        let max = self.messages_per_thread.iter().max().copied().unwrap_or(0) as f64;
        max / (total as f64 / n as f64)
    }
}

/// The complete trace of one query execution: one entry per iteration.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Human-readable query name, e.g. `"bfs"`.
    pub query: String,
    /// Dataset short name, e.g. `"r2"`.
    pub dataset: String,
    /// Per-iteration work records, in execution order.
    pub iterations: Vec<IterationTrace>,
}

impl QueryTrace {
    /// Creates an empty trace for `query` over `dataset`.
    pub fn new(query: impl Into<String>, dataset: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            dataset: dataset.into(),
            iterations: Vec::new(),
        }
    }

    /// Total bytes read across the whole query.
    pub fn total_io_bytes(&self) -> u64 {
        self.iterations
            .iter()
            .map(IterationTrace::total_io_bytes)
            .sum()
    }

    /// Total edges examined across the whole query.
    pub fn total_edges(&self) -> u64 {
        self.iterations.iter().map(|i| i.edges_processed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_skew_is_max_minus_min() {
        let mut t = IterationTrace::new(3);
        t.io_bytes_per_device = vec![100, 40, 70];
        assert_eq!(t.io_skew_bytes(), 60);
    }

    #[test]
    fn message_skew_of_balanced_load_is_one() {
        let mut t = IterationTrace::new(1);
        t.messages_per_thread = vec![50, 50, 50, 50];
        assert!((t.message_skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn message_skew_detects_straggler() {
        let mut t = IterationTrace::new(1);
        t.messages_per_thread = vec![10, 10, 10, 70];
        assert!((t.message_skew() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = IterationTrace::new(2);
        assert_eq!(t.total_io_bytes(), 0);
        assert_eq!(t.io_skew_bytes(), 0);
        assert_eq!(t.message_skew(), 1.0);
    }

    #[test]
    fn query_trace_accumulates() {
        let mut q = QueryTrace::new("bfs", "r2");
        let mut i1 = IterationTrace::new(1);
        i1.io_bytes_per_device = vec![4096];
        i1.edges_processed = 10;
        let mut i2 = IterationTrace::new(1);
        i2.io_bytes_per_device = vec![8192];
        i2.edges_processed = 20;
        q.iterations.push(i1);
        q.iterations.push(i2);
        assert_eq!(q.total_io_bytes(), 12288);
        assert_eq!(q.total_edges(), 30);
    }

    #[test]
    fn traces_clone_deeply() {
        let mut q = QueryTrace::new("pr", "r3");
        q.iterations.push(IterationTrace::new(2));
        let back = q.clone();
        assert_eq!(back.query, "pr");
        assert_eq!(back.iterations.len(), 1);
        assert_eq!(back.iterations[0].io_bytes_per_device.len(), 2);
    }
}
