//! Small utilities: cache-line padding and byte formatting.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to a 64-byte cache line to prevent false sharing
/// between per-thread counters and cursors.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Formats a byte count with a binary-unit suffix, e.g. `1.5 MiB`.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Integer ceiling division.
pub const fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 64);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }
}
