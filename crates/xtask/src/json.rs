//! A minimal JSON reader/writer for the lint report and baseline.
//!
//! The workspace builds offline with no third-party crates, so the
//! machine-readable lint output is hand-rolled: an escaper for emission and
//! a small recursive-descent parser for reading the committed baseline back
//! (and for round-trip tests of the report itself). The dialect is plain
//! RFC 8259 minus surrogate-pair escapes, which the emitter never produces.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs (duplicate keys keep the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as the body of a JSON string (no quotes).
pub fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Convenience: `"escaped"` with quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(&mut out, s);
    out.push('"');
    out
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing data at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self
            .chars
            .get(self.i)
            .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".to_string());
                                };
                                self.i += 1;
                                code = code * 16 + h;
                            }
                            // Surrogate halves never appear in our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" backslash \\ newline \n tab \t control \u{1} done";
        let quoted = quote(original);
        let parsed = parse(&quoted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap(), Value::Num(2.5));
    }
}
