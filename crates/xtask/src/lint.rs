//! The workspace analysis gate (`cargo xtask lint`).
//!
//! Six rules. The first four operate on comment/string-stripped code text
//! (see [`scan`]); the last two are structural, built on the
//! token scanner in [`tokens`]:
//!
//! 1. `sync-ordering` — every `Ordering::Relaxed` / `Ordering::SeqCst` in
//!    library code must carry a `// sync-audit:` justification on the same
//!    line or within the three lines above. The blaze-sync model checker
//!    executes all atomics sequentially-consistently, so relaxed orderings
//!    are exactly the part loom cannot vouch for — each one needs a written
//!    argument.
//! 2. `panic` — no `.unwrap()` / `.expect(` in non-test library code;
//!    structurally-infallible or deliberately-aborting sites carry a
//!    `// panic-audit:` justification instead.
//! 3. `sync-facade` — no direct `std::sync`, `parking_lot`, or `crossbeam`
//!    references outside the `blaze-sync` facade crate, so every piece of
//!    concurrent state stays model-checkable under `--cfg loom`.
//! 4. `scratch-copy` — no `scratch.extend` outside the endian-fallback
//!    module (`crates/graph/src/fallback.rs`). The scatter hot loop hands
//!    out zero-copy `&[u32]` adjacency slices; copying neighbor runs into a
//!    scratch vector anywhere else silently reintroduces the per-page copy
//!    the zero-copy decode removed. There is no waiver comment — new decode
//!    paths belong in the fallback module.
//! 5. `unsafe-audit` — every `unsafe` block/fn/impl/trait in library code
//!    carries a `// safety:` justification (see
//!    [`unsafe_audit`]); a per-crate census is printed
//!    by `cargo xtask lint --report`.
//! 6. `lock-order` — the workspace lock-acquisition graph extracted from
//!    guard-held regions must be cycle-free and consistent with the
//!    canonical hierarchy in DESIGN.md §11 (see
//!    [`lockgraph`]).
//!
//! All waiver comments share one window rule: the justification sits on the
//! flagged line or within [`WAIVER_WINDOW`] lines above, where blank lines,
//! attribute-only lines (`#[inline]`, `#![allow]`, …), and `//` comment
//! lines are transparent — they don't consume the window, so a multi-line
//! justification or an attribute stack never pushes the waiver out of
//! reach.
//!
//! Scope: `src/` trees of `crates/*` and the workspace root. Binary targets
//! (`src/bin/<name>.rs` or `src/main.rs`) are exempt from the `panic` rule
//! (a CLI aborting loudly is fine), `shims/*` mimic third-party crates and
//! are exempt from `panic` and `sync-facade` (they exist precisely to wrap
//! std machinery), and the `blaze-bench` harness is exempt from `panic`
//! (setup failures should abort the run).
//!
//! Output: human-readable by default; `--format json` emits a
//! machine-readable report (spans, rules, messages, unsafe census). A
//! committed [`Baseline`] (`lint-baseline.json`) suppresses a fixed number
//! of violations per (rule, file) so a newly introduced rule can ratchet
//! down instead of blocking on day one.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::json;
use crate::lockgraph;
use crate::scan::{contains_word, scan};
use crate::tokens;
use crate::unsafe_audit::{self, UnsafeCensus};

/// How many lines above a match a waiver comment may sit (blank,
/// attribute-only, and comment lines are not counted).
const WAIVER_WINDOW: usize = 3;

/// Crates (by directory name under `crates/`) exempt from the `panic` rule.
const PANIC_EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

/// The facade crate allowed to touch std sync machinery directly.
const FACADE_CRATE: &str = "sync";

/// The only module allowed to copy adjacency bytes into a scratch vector
/// (the big-endian / misalignment fallback of the zero-copy decode).
const FALLBACK_MODULE: &str = "crates/graph/src/fallback.rs";

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub path: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass<'a> {
    /// Directory name under `crates/` or `shims/` ("binning", "sync", ...).
    pub crate_name: &'a str,
    /// Under `shims/` (third-party stand-ins).
    pub is_shim: bool,
    /// Binary target (`src/bin/<path>` or `src/main.rs`).
    pub is_bin: bool,
}

/// Classifies a workspace-relative path; `None` for files the gate skips
/// entirely (tests, benches, examples, build scripts, non-Rust).
pub fn classify(rel: &Path) -> Option<FileClass<'_>> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    // Only library/binary sources are in scope (the `src` tree directly
    // under the crate root); integration tests, benches, and examples may
    // use whatever they like.
    let (crate_name, is_shim, rest) = match comps.as_slice() {
        ["crates", name, "src", rest @ ..] => (*name, false, rest),
        ["shims", name, "src", rest @ ..] => (*name, true, rest),
        ["src", rest @ ..] => ("(root)", false, rest),
        _ => return None,
    };
    // A binary target is a file under the `bin` directory component
    // directly below `src/`, or `src/main.rs` itself. Nothing else — a
    // crate named "binning" or a module dir containing "bin" in its name
    // must not be exempted from the panic rule.
    let is_bin = matches!(rest, ["bin", _, ..] | ["main.rs"]);
    Some(FileClass {
        crate_name,
        is_shim,
        is_bin,
    })
}

/// The candidate lines a waiver comment for `line` (1-based) may sit on:
/// the line itself plus up to [`WAIVER_WINDOW`] lines above, where blank
/// lines, attribute-only lines, and `//` comment lines are yielded but do
/// not consume the window. Attributes keep a justification above
/// `#[inline]`/`#[cold]` alive; comment transparency means the *whole*
/// comment block attached to a statement is searched, so a multi-line
/// `// SAFETY: …` argument waives no matter how long it runs.
pub(crate) fn window_lines<'a>(
    raw_lines: &'a [&'a str],
    line: usize,
) -> impl Iterator<Item = &'a str> {
    let mut out: Vec<&str> = Vec::new();
    if line >= 1 && line <= raw_lines.len() {
        out.push(raw_lines[line - 1]);
        let mut counted = 0;
        let mut i = line - 1;
        while counted < WAIVER_WINDOW && i > 0 {
            i -= 1;
            let l = raw_lines[i];
            let t = l.trim();
            out.push(l);
            let transparent =
                t.is_empty() || t.starts_with("#[") || t.starts_with("#![") || t.starts_with("//");
            if !transparent {
                counted += 1;
            }
        }
    }
    out.into_iter()
}

/// Whether a waiver token appears (case-insensitively) on the line or
/// within the window above.
pub(crate) fn waiver_near(raw_lines: &[&str], line: usize, token: &str) -> bool {
    let token = token.to_ascii_lowercase();
    window_lines(raw_lines, line).any(|l| l.to_ascii_lowercase().contains(&token))
}

/// Runs the line-textual rules (1–4) over one file's source text.
pub fn check_source(rel: &Path, class: FileClass<'_>, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let raw_lines: Vec<&str> = lines.iter().map(|l| l.raw.as_str()).collect();
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            path: rel.to_path_buf(),
            line,
            rule,
            message,
        });
    };

    for line in &lines {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        // Rule 1: relaxed/SeqCst orderings need a sync-audit justification.
        for ordering in ["Ordering::Relaxed", "Ordering::SeqCst"] {
            if code.contains(ordering) && !waiver_near(&raw_lines, line.number, "sync-audit:") {
                push(
                    &mut out,
                    line.number,
                    "sync-ordering",
                    format!(
                        "`{ordering}` without a `// sync-audit:` justification \
                         (the loom model runs atomics sequentially consistently, \
                         so the ordering argument must be written down)"
                    ),
                );
            }
        }

        // Rule 2: no unwrap/expect in non-test library code.
        if !class.is_bin && !class.is_shim && !PANIC_EXEMPT_CRATES.contains(&class.crate_name) {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) && !waiver_near(&raw_lines, line.number, "panic-audit:") {
                    push(
                        &mut out,
                        line.number,
                        "panic",
                        format!(
                            "`{pat}` in library code without a `// panic-audit:` \
                             justification; propagate a BlazeError instead"
                        ),
                    );
                }
            }
        }

        // Rule 4: adjacency bytes are only copied in the fallback module.
        if code.contains("scratch.extend") && rel != Path::new(FALLBACK_MODULE) {
            push(
                &mut out,
                line.number,
                "scratch-copy",
                "`scratch.extend` outside the endian-fallback module; the \
                 scatter path is zero-copy — put byte-wise decodes in \
                 crates/graph/src/fallback.rs"
                    .to_string(),
            );
        }

        // Rule 3: all synchronization goes through the blaze-sync facade.
        if class.crate_name != FACADE_CRATE && !class.is_shim {
            for pat in ["std::sync", "parking_lot", "crossbeam"] {
                if contains_word(code, pat.split("::").next().unwrap_or(pat)) && code.contains(pat)
                {
                    push(
                        &mut out,
                        line.number,
                        "sync-facade",
                        format!(
                            "direct `{pat}` reference outside blaze-sync; import \
                             through `blaze_sync` so the code stays model-checkable"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Everything one gate run produced: the full (unfiltered) violation list
/// plus the per-crate unsafe census.
#[derive(Debug, Default)]
pub struct Report {
    /// Files in scope that were scanned.
    pub scanned: usize,
    /// All violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Unsafe census per crate (crates with zero sites are omitted).
    pub census: BTreeMap<String, UnsafeCensus>,
}

/// Recursively collects `.rs` files under `root`, skipping `target/`.
fn collect_rs(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the gate over the workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let hierarchy = match std::fs::read_to_string(root.join("DESIGN.md")) {
        Ok(text) => lockgraph::Hierarchy::parse_design(&text),
        Err(_) => lockgraph::Hierarchy::default(),
    };

    let mut report = Report::default();
    let mut edges = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(&path)?;
        report.scanned += 1;
        report.violations.extend(check_source(&rel, class, &source));

        // Structural rules share one token pass per file.
        let structure = tokens::analyze(&source);
        let raw_lines: Vec<&str> = source.lines().collect();
        let (unsafe_violations, census) = unsafe_audit::check(&rel, class, &structure, &raw_lines);
        report.violations.extend(unsafe_violations);
        if census.total() > 0 {
            report
                .census
                .entry(class.crate_name.to_string())
                .or_default()
                .absorb(&census);
        }
        edges.extend(lockgraph::extract(&rel, class, &structure, &raw_lines));
    }
    report
        .violations
        .extend(lockgraph::check(&edges, &hierarchy));
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Renders the machine-readable report (`--format json`).
pub fn render_json(
    scanned: usize,
    active: &[Violation],
    suppressed: usize,
    census: &BTreeMap<String, UnsafeCensus>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {scanned},\n"));
    out.push_str(&format!("  \"suppressed_by_baseline\": {suppressed},\n"));
    out.push_str("  \"violations\": [");
    for (i, v) in active.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": ");
        out.push_str(&json::quote(&v.path.display().to_string()));
        out.push_str(&format!(", \"line\": {}, \"rule\": ", v.line));
        out.push_str(&json::quote(v.rule));
        out.push_str(", \"message\": ");
        out.push_str(&json::quote(&v.message));
        out.push('}');
    }
    if !active.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"unsafe_census\": {");
    for (i, (crate_name, c)) in census.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json::quote(crate_name));
        out.push_str(&format!(
            ": {{\"blocks\": {}, \"fns\": {}, \"impls\": {}, \"traits\": {}, \
             \"externs\": {}, \"total\": {}}}",
            c.blocks,
            c.fns,
            c.impls,
            c.traits,
            c.externs,
            c.total()
        ));
    }
    if !census.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Parses a rendered report back into (scanned, violations, suppressed) —
/// the round-trip proof that the JSON artifact is losslessly consumable.
#[cfg(test)]
pub fn parse_report(text: &str) -> Result<(usize, Vec<Violation>, usize), String> {
    let doc = json::parse(text)?;
    let scanned = doc
        .get("files_scanned")
        .and_then(json::Value::as_u64)
        .ok_or("missing files_scanned")? as usize;
    let suppressed = doc
        .get("suppressed_by_baseline")
        .and_then(json::Value::as_u64)
        .unwrap_or(0) as usize;
    let mut violations = Vec::new();
    for v in doc
        .get("violations")
        .and_then(json::Value::as_arr)
        .ok_or("missing violations")?
    {
        let path = v.get("path").and_then(json::Value::as_str).ok_or("path")?;
        let line = v.get("line").and_then(json::Value::as_u64).ok_or("line")? as usize;
        let rule = v.get("rule").and_then(json::Value::as_str).ok_or("rule")?;
        let message = v
            .get("message")
            .and_then(json::Value::as_str)
            .ok_or("message")?;
        violations.push(Violation {
            path: PathBuf::from(path),
            line,
            // Rules are a closed set; map back to the static name so the
            // parsed report compares equal to the original.
            rule: RULES
                .iter()
                .find(|r| **r == rule)
                .copied()
                .ok_or_else(|| format!("unknown rule `{rule}`"))?,
            message: message.to_string(),
        });
    }
    Ok((scanned, violations, suppressed))
}

/// Every rule name the gate can emit.
#[cfg(test)]
pub const RULES: &[&str] = &[
    "sync-ordering",
    "panic",
    "sync-facade",
    "scratch-copy",
    "unsafe-audit",
    "lock-order",
];

/// The committed ratchet: how many violations per (rule, file) are
/// tolerated. New rules land with their existing debt recorded here and the
/// counts only go down — the gate fails on any *new* violation and the
/// baseline is rewritten (smaller) with `--write-baseline` as debt is paid.
#[derive(Debug, Default)]
pub struct Baseline {
    allowed: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Builds a baseline that tolerates exactly the given violations.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut allowed = BTreeMap::new();
        for v in violations {
            *allowed
                .entry((v.rule.to_string(), v.path.display().to_string()))
                .or_insert(0) += 1;
        }
        Self { allowed }
    }

    /// Parses the committed baseline file.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let mut allowed = BTreeMap::new();
        for entry in doc
            .get("allowed")
            .and_then(json::Value::as_arr)
            .ok_or("baseline: missing `allowed` array")?
        {
            let rule = entry
                .get("rule")
                .and_then(json::Value::as_str)
                .ok_or("baseline entry: missing rule")?;
            let path = entry
                .get("path")
                .and_then(json::Value::as_str)
                .ok_or("baseline entry: missing path")?;
            let count = entry
                .get("count")
                .and_then(json::Value::as_u64)
                .ok_or("baseline entry: missing count")? as usize;
            allowed.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Self { allowed })
    }

    /// Renders the baseline for committing.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n  \"allowed\": [");
        for (i, ((rule, path), count)) in self.allowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            out.push_str(&json::quote(rule));
            out.push_str(", \"path\": ");
            out.push_str(&json::quote(path));
            out.push_str(&format!(", \"count\": {count}}}"));
        }
        if !self.allowed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Splits violations into (active, suppressed-count): per (rule, file),
    /// the first `count` violations (in line order) are tolerated.
    pub fn filter(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize) {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut active = Vec::new();
        let mut suppressed = 0;
        for v in violations {
            let key = (v.rule.to_string(), v.path.display().to_string());
            let cap = self.allowed.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_insert(0);
            if *u < cap {
                *u += 1;
                suppressed += 1;
            } else {
                active.push(v);
            }
        }
        (active, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class() -> FileClass<'static> {
        FileClass {
            crate_name: "core",
            is_shim: false,
            is_bin: false,
        }
    }

    fn check(src: &str) -> Vec<Violation> {
        check_source(Path::new("crates/core/src/x.rs"), lib_class(), src)
    }

    #[test]
    fn classify_scopes_targets() {
        assert_eq!(
            classify(Path::new("crates/core/src/engine.rs")),
            Some(FileClass {
                crate_name: "core",
                is_shim: false,
                is_bin: false
            })
        );
        assert_eq!(
            classify(Path::new("crates/cli/src/bin/bfs.rs")).map(|c| c.is_bin),
            Some(true)
        );
        assert_eq!(
            classify(Path::new("shims/tempfile/src/lib.rs")).map(|c| c.is_shim),
            Some(true)
        );
        assert!(classify(Path::new("crates/core/tests/loom_pipeline.rs")).is_none());
        assert!(classify(Path::new("crates/bench/benches/micro.rs")).is_none());
        assert!(classify(Path::new("crates/core/README.md")).is_none());
    }

    #[test]
    fn classify_bin_requires_bin_component_under_src() {
        // src/main.rs and src/bin/<file> are binary targets…
        assert_eq!(
            classify(Path::new("crates/cli/src/main.rs")).map(|c| c.is_bin),
            Some(true)
        );
        assert_eq!(
            classify(Path::new("crates/cli/src/bin/serve/main.rs")).map(|c| c.is_bin),
            Some(true)
        );
        assert_eq!(
            classify(Path::new("src/main.rs")).map(|c| c.is_bin),
            Some(true)
        );
        // …but name lookalikes are not: a module directory containing
        // "bin" elsewhere in the tree, or a nested main.rs.
        assert_eq!(
            classify(Path::new("crates/binning/src/bin.rs")).map(|c| c.is_bin),
            Some(false)
        );
        assert_eq!(
            classify(Path::new("crates/core/src/cabin/bin.rs")).map(|c| c.is_bin),
            Some(false)
        );
        assert_eq!(
            classify(Path::new("crates/core/src/robin/main.rs")).map(|c| c.is_bin),
            Some(false)
        );
        // A `bin` directory not directly under src/ is not a target dir.
        assert_eq!(
            classify(Path::new("crates/core/src/io/bin/helper.rs")).map(|c| c.is_bin),
            Some(false)
        );
    }

    #[test]
    fn seeded_unjustified_ordering_is_flagged() {
        let v = check("let x = a.load(Ordering::Relaxed);");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-ordering");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn sync_audit_comment_waives_ordering() {
        let src = "// sync-audit: monotonic counter, no ordering dependency.\n\
                   let x = a.load(Ordering::Relaxed);";
        assert!(check(src).is_empty());
        let same_line = "let x = a.load(Ordering::Relaxed); // sync-audit: counter.";
        assert!(check(same_line).is_empty());
    }

    #[test]
    fn waiver_window_is_bounded() {
        // Four real code lines between the comment and the match: the
        // window (3 counted lines) expires.
        let src = "// sync-audit: too far away.\n\
                   let a = 1;\n\
                   let b = 2;\n\
                   let c = 3;\n\
                   let d = 4;\n\
                   let x = a.load(Ordering::SeqCst);";
        let v = check(src);
        assert_eq!(v.len(), 1, "waiver beyond the window must not apply");
    }

    #[test]
    fn waiver_window_skips_blank_and_attribute_lines() {
        // Blank lines and attributes are transparent: the justification
        // still applies even though it sits 5 physical lines up.
        let src = "// sync-audit: counter, ordering-free.\n\
                   #[inline]\n\
                   \n\
                   #[cold]\n\
                   #![allow(dead_code)]\n\
                   let x = a.load(Ordering::SeqCst);";
        assert!(check(src).is_empty());
    }

    #[test]
    fn seeded_unwrap_is_flagged_and_audit_waives() {
        let v = check("let y = maybe.unwrap();");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic");
        let waived = "// panic-audit: checked non-empty above.\nlet y = maybe.unwrap();";
        assert!(check(waived).is_empty());
    }

    #[test]
    fn expect_in_test_module_is_allowed() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { maybe.unwrap(); }\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn seeded_facade_violation_is_flagged() {
        let v = check("use std::sync::Arc;");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-facade");
        let v = check("let q = crossbeam::queue::SegQueue::new();");
        assert_eq!(v.len(), 1);
        let v = check("use parking_lot::Mutex;");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn facade_rule_skips_sync_crate_and_shims() {
        let sync = FileClass {
            crate_name: "sync",
            is_shim: false,
            is_bin: false,
        };
        let v = check_source(
            Path::new("crates/sync/src/std_impl.rs"),
            sync,
            "use std::sync::Mutex;",
        );
        assert!(v.is_empty());
        let shim = FileClass {
            crate_name: "tempfile",
            is_shim: true,
            is_bin: false,
        };
        let v = check_source(
            Path::new("shims/tempfile/src/lib.rs"),
            shim,
            "use std::sync::Mutex;",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn bin_targets_may_panic_but_not_bypass_facade() {
        let bin = FileClass {
            crate_name: "cli",
            is_shim: false,
            is_bin: true,
        };
        let v = check_source(
            Path::new("crates/cli/src/bin/bfs.rs"),
            bin,
            "args.parse().unwrap();\nuse std::sync::Arc;",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-facade");
    }

    #[test]
    fn scratch_extend_is_flagged_outside_the_fallback_module() {
        let v = check("scratch.extend(chunk.iter());");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "scratch-copy");
        // The fallback module itself is the one sanctioned home.
        let class = FileClass {
            crate_name: "graph",
            is_shim: false,
            is_bin: false,
        };
        let v = check_source(
            Path::new("crates/graph/src/fallback.rs"),
            class,
            "scratch.extend(chunk.iter());",
        );
        assert!(v.is_empty());
        // Other graph-crate files get no exemption.
        let v = check_source(
            Path::new("crates/graph/src/disk.rs"),
            class,
            "scratch.extend(chunk.iter());",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn patterns_in_strings_and_comments_are_ignored() {
        let src = "// std::sync is forbidden — this comment is fine\n\
                   let s = \"Ordering::Relaxed .unwrap() std::sync\";";
        assert!(check(src).is_empty());
    }

    fn sample_violations() -> Vec<Violation> {
        vec![
            Violation {
                path: PathBuf::from("crates/core/src/a.rs"),
                line: 3,
                rule: "panic",
                message: "msg with \"quotes\" and\nnewline".to_string(),
            },
            Violation {
                path: PathBuf::from("crates/core/src/a.rs"),
                line: 9,
                rule: "panic",
                message: "second".to_string(),
            },
            Violation {
                path: PathBuf::from("crates/graph/src/b.rs"),
                line: 1,
                rule: "unsafe-audit",
                message: "third".to_string(),
            },
        ]
    }

    #[test]
    fn json_report_round_trips() {
        let violations = sample_violations();
        let mut census = BTreeMap::new();
        census.insert(
            "core".to_string(),
            UnsafeCensus {
                blocks: 2,
                fns: 1,
                impls: 0,
                traits: 0,
                externs: 0,
            },
        );
        let text = render_json(42, &violations, 7, &census);
        let (scanned, parsed, suppressed) = parse_report(&text).expect("report parses");
        assert_eq!(scanned, 42);
        assert_eq!(suppressed, 7);
        assert_eq!(parsed, violations);
        // Census survives as JSON too.
        let doc = crate::json::parse(&text).unwrap();
        let core = doc
            .get("unsafe_census")
            .and_then(|c| c.get("core"))
            .unwrap();
        assert_eq!(
            core.get("total").and_then(crate::json::Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn baseline_round_trips_and_ratchets() {
        let violations = sample_violations();
        let baseline = Baseline::from_violations(&violations);
        let reparsed = Baseline::parse(&baseline.to_json()).expect("baseline parses");

        // The recorded debt is fully suppressed…
        let (active, suppressed) = reparsed.filter(violations.clone());
        assert!(active.is_empty());
        assert_eq!(suppressed, 3);

        // …but a new violation in the same file is not (counts ratchet).
        let mut more = violations.clone();
        more.push(Violation {
            path: PathBuf::from("crates/core/src/a.rs"),
            line: 20,
            rule: "panic",
            message: "fresh debt".to_string(),
        });
        let (active, suppressed) = reparsed.filter(more);
        assert_eq!(suppressed, 3);
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].line, 20);
    }

    #[test]
    fn empty_baseline_suppresses_nothing() {
        let (active, suppressed) = Baseline::default().filter(sample_violations());
        assert_eq!(active.len(), 3);
        assert_eq!(suppressed, 0);
    }
}
