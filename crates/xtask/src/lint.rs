//! The workspace analysis gate (`cargo xtask lint`).
//!
//! Four rules, all operating on comment/string-stripped code text:
//!
//! 1. `sync-ordering` — every `Ordering::Relaxed` / `Ordering::SeqCst` in
//!    library code must carry a `// sync-audit:` justification on the same
//!    line or within the three lines above. The blaze-sync model checker
//!    executes all atomics sequentially-consistently, so relaxed orderings
//!    are exactly the part loom cannot vouch for — each one needs a written
//!    argument.
//! 2. `panic` — no `.unwrap()` / `.expect(` in non-test library code;
//!    structurally-infallible or deliberately-aborting sites carry a
//!    `// panic-audit:` justification instead.
//! 3. `sync-facade` — no direct `std::sync`, `parking_lot`, or `crossbeam`
//!    references outside the `blaze-sync` facade crate, so every piece of
//!    concurrent state stays model-checkable under `--cfg loom`.
//! 4. `scratch-copy` — no `scratch.extend` outside the endian-fallback
//!    module (`crates/graph/src/fallback.rs`). The scatter hot loop hands
//!    out zero-copy `&[u32]` adjacency slices; copying neighbor runs into a
//!    scratch vector anywhere else silently reintroduces the per-page copy
//!    the zero-copy decode removed. There is no waiver comment — new decode
//!    paths belong in the fallback module.
//!
//! Scope: `src/` trees of `crates/*` and the workspace root. Binary targets
//! (`src/bin/`) are exempt from the `panic` rule (a CLI aborting loudly is
//! fine), `shims/*` mimic third-party crates and are exempt from `panic`
//! and `sync-facade` (they exist precisely to wrap std machinery), and the
//! `blaze-bench` harness is exempt from `panic` (setup failures should
//! abort the run).

use std::fmt;
use std::path::{Path, PathBuf};

use crate::scan::{contains_word, scan, CodeLine};

/// How many lines above a match a waiver comment may sit.
const WAIVER_WINDOW: usize = 3;

/// Crates (by directory name under `crates/`) exempt from the `panic` rule.
const PANIC_EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

/// The facade crate allowed to touch std sync machinery directly.
const FACADE_CRATE: &str = "sync";

/// The only module allowed to copy adjacency bytes into a scratch vector
/// (the big-endian / misalignment fallback of the zero-copy decode).
const FALLBACK_MODULE: &str = "crates/graph/src/fallback.rs";

/// One rule violation.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    pub path: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Where a file sits in the workspace, as far as rule scoping cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass<'a> {
    /// Directory name under `crates/` or `shims/` ("binning", "sync", ...).
    pub crate_name: &'a str,
    /// Under `shims/` (third-party stand-ins).
    pub is_shim: bool,
    /// Binary target (`src/bin/...` or `src/main.rs`).
    pub is_bin: bool,
}

/// Classifies a workspace-relative path; `None` for files the gate skips
/// entirely (tests, benches, examples, build scripts, non-Rust).
pub fn classify(rel: &Path) -> Option<FileClass<'_>> {
    if rel.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let (crate_name, is_shim, rest) = match comps.as_slice() {
        ["crates", name, rest @ ..] => (*name, false, rest),
        ["shims", name, rest @ ..] => (*name, true, rest),
        ["src", ..] => ("(root)", false, &comps[1..]),
        _ => return None,
    };
    // Only library/binary sources are in scope; integration tests, benches,
    // and examples may use whatever they like.
    let in_src = comps.contains(&"src");
    if !in_src {
        return None;
    }
    let is_bin = rest.first() == Some(&"bin")
        || comps.contains(&"bin")
        || rel.file_name().and_then(|f| f.to_str()) == Some("main.rs");
    Some(FileClass {
        crate_name,
        is_shim,
        is_bin,
    })
}

/// Whether a waiver token appears on the line or within the window above.
fn waived(lines: &[CodeLine], idx: usize, token: &str) -> bool {
    let lo = idx.saturating_sub(WAIVER_WINDOW);
    lines[lo..=idx].iter().any(|l| l.raw.contains(token))
}

/// Runs all rules over one file's source text.
pub fn check_source(rel: &Path, class: FileClass<'_>, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            path: rel.to_path_buf(),
            line,
            rule,
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        // Rule 1: relaxed/SeqCst orderings need a sync-audit justification.
        for ordering in ["Ordering::Relaxed", "Ordering::SeqCst"] {
            if code.contains(ordering) && !waived(&lines, idx, "sync-audit:") {
                push(
                    &mut out,
                    line.number,
                    "sync-ordering",
                    format!(
                        "`{ordering}` without a `// sync-audit:` justification \
                         (the loom model runs atomics sequentially consistently, \
                         so the ordering argument must be written down)"
                    ),
                );
            }
        }

        // Rule 2: no unwrap/expect in non-test library code.
        if !class.is_bin && !class.is_shim && !PANIC_EXEMPT_CRATES.contains(&class.crate_name) {
            for pat in [".unwrap()", ".expect("] {
                if code.contains(pat) && !waived(&lines, idx, "panic-audit:") {
                    push(
                        &mut out,
                        line.number,
                        "panic",
                        format!(
                            "`{pat}` in library code without a `// panic-audit:` \
                             justification; propagate a BlazeError instead"
                        ),
                    );
                }
            }
        }

        // Rule 4: adjacency bytes are only copied in the fallback module.
        if code.contains("scratch.extend") && rel != Path::new(FALLBACK_MODULE) {
            push(
                &mut out,
                line.number,
                "scratch-copy",
                "`scratch.extend` outside the endian-fallback module; the \
                 scatter path is zero-copy — put byte-wise decodes in \
                 crates/graph/src/fallback.rs"
                    .to_string(),
            );
        }

        // Rule 3: all synchronization goes through the blaze-sync facade.
        if class.crate_name != FACADE_CRATE && !class.is_shim {
            for pat in ["std::sync", "parking_lot", "crossbeam"] {
                if contains_word(code, pat.split("::").next().unwrap_or(pat)) && code.contains(pat)
                {
                    push(
                        &mut out,
                        line.number,
                        "sync-facade",
                        format!(
                            "direct `{pat}` reference outside blaze-sync; import \
                             through `blaze_sync` so the code stays model-checkable"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Recursively collects `.rs` files under `root`, skipping `target/`.
fn collect_rs(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the gate over the workspace rooted at `root`. Returns the number of
/// files scanned plus all violations.
pub fn run(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut scanned = 0;
    let mut violations = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(&path)?;
        scanned += 1;
        violations.extend(check_source(&rel, class, &source));
    }
    Ok((scanned, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class() -> FileClass<'static> {
        FileClass {
            crate_name: "core",
            is_shim: false,
            is_bin: false,
        }
    }

    fn check(src: &str) -> Vec<Violation> {
        check_source(Path::new("crates/core/src/x.rs"), lib_class(), src)
    }

    #[test]
    fn classify_scopes_targets() {
        assert_eq!(
            classify(Path::new("crates/core/src/engine.rs")),
            Some(FileClass {
                crate_name: "core",
                is_shim: false,
                is_bin: false
            })
        );
        assert_eq!(
            classify(Path::new("crates/cli/src/bin/bfs.rs")).map(|c| c.is_bin),
            Some(true)
        );
        assert_eq!(
            classify(Path::new("shims/tempfile/src/lib.rs")).map(|c| c.is_shim),
            Some(true)
        );
        assert!(classify(Path::new("crates/core/tests/loom_pipeline.rs")).is_none());
        assert!(classify(Path::new("crates/bench/benches/micro.rs")).is_none());
        assert!(classify(Path::new("crates/core/README.md")).is_none());
    }

    #[test]
    fn seeded_unjustified_ordering_is_flagged() {
        let v = check("let x = a.load(Ordering::Relaxed);");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-ordering");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn sync_audit_comment_waives_ordering() {
        let src = "// sync-audit: monotonic counter, no ordering dependency.\n\
                   let x = a.load(Ordering::Relaxed);";
        assert!(check(src).is_empty());
        let same_line = "let x = a.load(Ordering::Relaxed); // sync-audit: counter.";
        assert!(check(same_line).is_empty());
    }

    #[test]
    fn waiver_window_is_bounded() {
        let src = "// sync-audit: too far away.\n\n\n\n\nlet x = a.load(Ordering::SeqCst);";
        let v = check(src);
        assert_eq!(v.len(), 1, "waiver beyond the window must not apply");
    }

    #[test]
    fn seeded_unwrap_is_flagged_and_audit_waives() {
        let v = check("let y = maybe.unwrap();");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic");
        let waived = "// panic-audit: checked non-empty above.\nlet y = maybe.unwrap();";
        assert!(check(waived).is_empty());
    }

    #[test]
    fn expect_in_test_module_is_allowed() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { maybe.unwrap(); }\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn seeded_facade_violation_is_flagged() {
        let v = check("use std::sync::Arc;");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-facade");
        let v = check("let q = crossbeam::queue::SegQueue::new();");
        assert_eq!(v.len(), 1);
        let v = check("use parking_lot::Mutex;");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn facade_rule_skips_sync_crate_and_shims() {
        let sync = FileClass {
            crate_name: "sync",
            is_shim: false,
            is_bin: false,
        };
        let v = check_source(
            Path::new("crates/sync/src/std_impl.rs"),
            sync,
            "use std::sync::Mutex;",
        );
        assert!(v.is_empty());
        let shim = FileClass {
            crate_name: "tempfile",
            is_shim: true,
            is_bin: false,
        };
        let v = check_source(
            Path::new("shims/tempfile/src/lib.rs"),
            shim,
            "use std::sync::Mutex;",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn bin_targets_may_panic_but_not_bypass_facade() {
        let bin = FileClass {
            crate_name: "cli",
            is_shim: false,
            is_bin: true,
        };
        let v = check_source(
            Path::new("crates/cli/src/bin/bfs.rs"),
            bin,
            "args.parse().unwrap();\nuse std::sync::Arc;",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "sync-facade");
    }

    #[test]
    fn scratch_extend_is_flagged_outside_the_fallback_module() {
        let v = check("scratch.extend(chunk.iter());");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "scratch-copy");
        // The fallback module itself is the one sanctioned home.
        let class = FileClass {
            crate_name: "graph",
            is_shim: false,
            is_bin: false,
        };
        let v = check_source(
            Path::new("crates/graph/src/fallback.rs"),
            class,
            "scratch.extend(chunk.iter());",
        );
        assert!(v.is_empty());
        // Other graph-crate files get no exemption.
        let v = check_source(
            Path::new("crates/graph/src/disk.rs"),
            class,
            "scratch.extend(chunk.iter());",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn patterns_in_strings_and_comments_are_ignored() {
        let src = "// std::sync is forbidden — this comment is fine\n\
                   let s = \"Ordering::Relaxed .unwrap() std::sync\";";
        assert!(check(src).is_empty());
    }
}
