//! The `lock-order` rule: static detection of lock-ordering deadlocks.
//!
//! The loom suites prove the interleavings the model tests *exercise*, but
//! the persistent runtime now has enough lock diversity (mailbox state,
//! completion handles, doorbells, cache shards, arena pools, bin pairs)
//! that an untested acquisition order could deadlock in production without
//! any model test failing. Because the `sync-facade` rule forces every
//! Mutex/RwLock/Condvar through `blaze-sync`, the workspace's entire
//! blocking-acquisition surface is textually recognizable — which makes a
//! *precise* static pass feasible:
//!
//! 1. **Guard-held regions.** Within each function body (token structure
//!    from [`tokens`](crate::tokens)), every zero-argument `.lock()` /
//!    `.read()` / `.write()` call is an acquisition. A `let`-bound guard
//!    lives until its scope closes or an explicit `drop(name)`; an unbound
//!    (temporary) guard lives until the end of the enclosing statement —
//!    mirroring Rust 2021 temporary-lifetime rules, including the
//!    `if m.lock().check() { … }` footgun where the guard outlives the
//!    condition.
//! 2. **Lock identity.** An acquisition is keyed by `crate/field` — the
//!    crate the file belongs to plus the final field name of the receiver
//!    chain (`self.shared.state.lock()` → `core/state`). Index expressions
//!    are skipped (`self.done[device].lock()` → `storage/done`), so every
//!    element of a shard array is one identity, which is exactly the
//!    granularity a lock *hierarchy* is written at.
//! 3. **The graph.** Acquiring `B` while a guard of `A` is live adds the
//!    edge `A → B`. The workspace-wide multigraph must be consistent with
//!    the canonical hierarchy declared in `DESIGN.md` §11 (a fenced
//!    ` ```lock-order ` block listing identities outermost-first): every
//!    edge's locks must appear in the list, in list order. Deliberate
//!    exceptions (e.g. two instances of one lock field ordered by index)
//!    carry a `// lock-order: A -> B` annotation at the inner acquisition.
//! 4. **Cycles.** Independent of the list, any cycle among non-annotated
//!    edges is reported with its path — this is the deadlock detector
//!    proper, and it fires even when no hierarchy has been declared yet.
//!
//! Known approximations (all conservative or order-preserving): closure
//! bodies are analyzed at their definition site (a closure defined under a
//! guard is assumed to run under it); condvar waits count as continuous
//! holds; guards returned from helper functions (`lock_for_gather`) are
//! not tracked across the call boundary.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use crate::lint::{window_lines, FileClass, Violation};
use crate::tokens::{Delim, Structure, Token, TokenKind};

/// One nested acquisition: `inner` acquired while a guard of `outer` lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub path: PathBuf,
    pub fn_name: String,
    /// Lock identity held (`crate/field`).
    pub outer: String,
    /// Line the outer guard was acquired on.
    pub outer_line: usize,
    /// Lock identity acquired under the outer guard.
    pub inner: String,
    /// Line of the inner acquisition (the edge's reporting site).
    pub line: usize,
    /// A `// lock-order: outer -> inner` annotation covers this edge.
    pub waived: bool,
}

/// A live guard during the intra-function walk.
struct Guard {
    /// `let` binding name, when there is one (enables `drop(name)`).
    name: Option<String>,
    /// Statement temporary: dies at the enclosing statement's `;`.
    temporary: bool,
    lock: String,
    line: usize,
}

/// Methods that acquire a blocking guard through the `blaze-sync` facade.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Resolves the receiver field of the acquisition whose `.` sits at `dot`:
/// the nearest identifier, skipping one or more trailing index/call groups
/// (`self.done[device]` → `done`, `self.shard(p).state` → `state`).
fn receiver_field(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match tokens[k].kind {
            TokenKind::Close(delim @ (Delim::Bracket | Delim::Paren)) => {
                // Walk back over the balanced group.
                let mut depth = 0i64;
                loop {
                    match tokens[k].kind {
                        TokenKind::Close(d) if d == delim => depth += 1,
                        TokenKind::Open(d) if d == delim => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
            }
            TokenKind::Ident => return Some(tokens[k].text.clone()),
            _ => return None,
        }
    }
}

/// Whether a `// lock-order: outer -> inner` annotation sits on the edge's
/// line or within the waiver window above (blank/attribute lines skipped).
fn annotated(raw_lines: &[&str], line: usize, outer: &str, inner: &str) -> bool {
    let want: String = format!("{outer}->{inner}");
    window_lines(raw_lines, line).any(|l| {
        let Some(at) = l.find("lock-order:") else {
            return false;
        };
        let normalized: String = l[at..].chars().filter(|c| !c.is_whitespace()).collect();
        normalized.contains(&want)
    })
}

/// Extracts the nested-acquisition edges of one file. Test-gated functions
/// are skipped; edges are deduplicated by (outer, inner, line).
pub fn extract(
    rel: &Path,
    class: FileClass<'_>,
    structure: &Structure,
    raw_lines: &[&str],
) -> Vec<Edge> {
    let tokens = &structure.tokens;
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: HashSet<(String, String, usize)> = HashSet::new();

    for f in &structure.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        // Scope stack; index 0 is the fn body itself.
        let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
        // `Some(binding)` while walking a `let` statement.
        let mut stmt_let: Option<Option<String>> = None;
        let mut at_stmt_start = true;
        let mut j = open + 1;
        while j < close {
            let t = &tokens[j];
            match t.kind {
                TokenKind::Open(Delim::Brace) => {
                    scopes.push(Vec::new());
                    at_stmt_start = true;
                    j += 1;
                    continue;
                }
                TokenKind::Close(Delim::Brace) => {
                    scopes.pop();
                    // A block that ends a statement (`match g { … }`,
                    // `if m.lock().x { … }`) ends its temporaries' lives —
                    // unless an `else` continues the same statement.
                    let continues = tokens.get(j + 1).is_some_and(|n| n.is_ident("else"));
                    if !continues {
                        if let Some(s) = scopes.last_mut() {
                            s.retain(|g| !g.temporary);
                        }
                        stmt_let = None;
                    }
                    at_stmt_start = true;
                    j += 1;
                    continue;
                }
                _ => {}
            }
            if t.is_punct(';') {
                if let Some(s) = scopes.last_mut() {
                    s.retain(|g| !g.temporary);
                }
                stmt_let = None;
                at_stmt_start = true;
                j += 1;
                continue;
            }
            if at_stmt_start && t.is_ident("let") {
                let mut k = j + 1;
                if tokens.get(k).is_some_and(|n| n.is_ident("mut")) {
                    k += 1;
                }
                let name = tokens
                    .get(k)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map(|n| n.text.clone());
                stmt_let = Some(name);
                at_stmt_start = false;
                j += 1;
                continue;
            }
            // `drop(name)` releases a named guard early.
            if t.is_ident("drop")
                && tokens
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokenKind::Open(Delim::Paren))
                && tokens
                    .get(j + 3)
                    .is_some_and(|n| n.kind == TokenKind::Close(Delim::Paren))
            {
                if let Some(name) = tokens.get(j + 2).filter(|n| n.kind == TokenKind::Ident) {
                    for scope in scopes.iter_mut() {
                        scope.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
                    }
                    j += 4;
                    at_stmt_start = false;
                    continue;
                }
            }
            // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
            let is_acquire = t.is_punct('.')
                && tokens.get(j + 1).is_some_and(|n| {
                    n.kind == TokenKind::Ident && ACQUIRE_METHODS.contains(&n.text.as_str())
                })
                && tokens
                    .get(j + 2)
                    .is_some_and(|n| n.kind == TokenKind::Open(Delim::Paren))
                && tokens
                    .get(j + 3)
                    .is_some_and(|n| n.kind == TokenKind::Close(Delim::Paren));
            if is_acquire {
                if let Some(field) = receiver_field(tokens, j) {
                    let lock = format!("{}/{}", class.crate_name, field);
                    let line = tokens[j + 1].line;
                    for g in scopes.iter().flatten() {
                        if seen.insert((g.lock.clone(), lock.clone(), line)) {
                            edges.push(Edge {
                                path: rel.to_path_buf(),
                                fn_name: f.name.clone(),
                                outer: g.lock.clone(),
                                outer_line: g.line,
                                inner: lock.clone(),
                                line,
                                waived: annotated(raw_lines, line, &g.lock, &lock),
                            });
                        }
                    }
                    // The `let` binds the *guard* only when the acquisition
                    // is the whole initializer (`let g = m.lock();`); in
                    // `let n = m.lock().len()` the guard is a statement
                    // temporary like any other.
                    let binds_guard = tokens.get(j + 4).is_some_and(|n| n.is_punct(';'));
                    let guard = match &stmt_let {
                        // `let _ = m.lock()` drops the guard immediately.
                        Some(Some(n)) if n == "_" && binds_guard => None,
                        Some(name) if binds_guard => Some(Guard {
                            name: name.clone(),
                            temporary: false,
                            lock,
                            line,
                        }),
                        _ => Some(Guard {
                            name: None,
                            temporary: true,
                            lock,
                            line,
                        }),
                    };
                    if let Some(g) = guard {
                        if let Some(s) = scopes.last_mut() {
                            s.push(g);
                        }
                    }
                    j += 4;
                    at_stmt_start = false;
                    continue;
                }
            }
            at_stmt_start = false;
            j += 1;
        }
    }
    edges
}

/// The canonical lock hierarchy: identities in acquisition order,
/// outermost first.
#[derive(Debug, Default, Clone)]
pub struct Hierarchy {
    order: Vec<String>,
}

impl Hierarchy {
    /// Builds a hierarchy from an explicit list (outermost first).
    #[cfg(test)]
    pub fn from_list(names: &[&str]) -> Self {
        Self {
            order: names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Parses the canonical hierarchy out of `DESIGN.md`: the first fenced
    /// ` ```lock-order ` block, one identity per line (blank lines and
    /// `#`-comments allowed). Returns an empty hierarchy when the block is
    /// absent — every nested acquisition is then undeclared, which is the
    /// intended failure mode for a workspace that has not written its
    /// hierarchy down yet.
    pub fn parse_design(text: &str) -> Self {
        let mut order = Vec::new();
        let mut in_block = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if in_block {
                if trimmed.starts_with("```") {
                    break;
                }
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                if let Some(first) = trimmed.split_whitespace().next() {
                    order.push(first.to_string());
                }
            } else if trimmed == "```lock-order" {
                in_block = true;
            }
        }
        Self { order }
    }

    /// Number of declared identities.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no hierarchy is declared.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn pos(&self, lock: &str) -> Option<usize> {
        self.order.iter().position(|l| l == lock)
    }
}

/// Checks the workspace edge set against the declared hierarchy and
/// reports cycles. `edges` is the concatenation of every file's
/// [`extract`] output.
pub fn check(edges: &[Edge], hierarchy: &Hierarchy) -> Vec<Violation> {
    let mut out = Vec::new();
    let live: Vec<&Edge> = edges.iter().filter(|e| !e.waived).collect();

    for e in &live {
        match (hierarchy.pos(&e.outer), hierarchy.pos(&e.inner)) {
            (Some(a), Some(b)) if a < b => {}
            (Some(_), Some(_)) => out.push(Violation {
                path: e.path.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "lock-order inversion in `{}`: `{}` acquired while holding \
                     `{}` (line {}), but the declared hierarchy orders `{}` \
                     first; re-order the acquisitions or annotate \
                     `// lock-order: {} -> {}` if the inversion is deliberate \
                     (e.g. distinct instances with their own ordering)",
                    e.fn_name, e.inner, e.outer, e.outer_line, e.inner, e.outer, e.inner
                ),
            }),
            (a, b) => {
                let mut missing = Vec::new();
                if a.is_none() {
                    missing.push(e.outer.as_str());
                }
                if b.is_none() {
                    missing.push(e.inner.as_str());
                }
                out.push(Violation {
                    path: e.path.clone(),
                    line: e.line,
                    rule: "lock-order",
                    message: format!(
                        "nested acquisition in `{}` (`{}` under `{}`) uses \
                         lock(s) not in the declared hierarchy: {}; add them \
                         to the ```lock-order``` table in DESIGN.md §11",
                        e.fn_name,
                        e.inner,
                        e.outer,
                        missing.join(", ")
                    ),
                });
            }
        }
    }

    // Cycle detection over the non-waived edge graph, independent of the
    // declared list: this is the deadlock detector proper.
    out.extend(find_cycles(&live));
    out
}

/// Reports one violation per elementary cycle class (per strongly
/// connected component with a cycle, plus self-loops).
fn find_cycles(edges: &[&Edge]) -> Vec<Violation> {
    // Adjacency over lock identities; remember one representative edge per
    // (from, to) pair for reporting.
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    let mut repr: HashMap<(&str, &str), &Edge> = HashMap::new();
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        adj.entry(e.outer.as_str())
            .or_default()
            .push(e.inner.as_str());
        repr.entry((e.outer.as_str(), e.inner.as_str()))
            .or_insert(e);
        for n in [e.outer.as_str(), e.inner.as_str()] {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
    }

    // Tarjan's SCC, iterative-enough for this graph's size (recursion depth
    // is bounded by the number of distinct lock identities).
    struct Tarjan<'a> {
        adj: &'a HashMap<&'a str, Vec<&'a str>>,
        index: HashMap<&'a str, usize>,
        low: HashMap<&'a str, usize>,
        on_stack: HashSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        sccs: Vec<Vec<&'a str>>,
    }
    impl<'a> Tarjan<'a> {
        fn visit(&mut self, v: &'a str) {
            self.index.insert(v, self.next);
            self.low.insert(v, self.next);
            self.next += 1;
            self.stack.push(v);
            self.on_stack.insert(v);
            if let Some(ws) = self.adj.get(v) {
                for &w in ws {
                    if !self.index.contains_key(w) {
                        self.visit(w);
                        let lw = self.low[w];
                        let lv = self.low.get_mut(v).expect("visited");
                        *lv = (*lv).min(lw);
                    } else if self.on_stack.contains(w) {
                        let iw = self.index[w];
                        let lv = self.low.get_mut(v).expect("visited");
                        *lv = (*lv).min(iw);
                    }
                }
            }
            if self.low[v] == self.index[v] {
                let mut scc = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack.remove(w);
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(scc);
            }
        }
    }
    let mut t = Tarjan {
        adj: &adj,
        index: HashMap::new(),
        low: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for &n in &nodes {
        if !t.index.contains_key(n) {
            t.visit(n);
        }
    }

    let mut out = Vec::new();
    for scc in &t.sccs {
        let cyclic = scc.len() > 1
            || adj
                .get(scc[0])
                .is_some_and(|ws| ws.iter().any(|&w| w == scc[0]));
        if !cyclic {
            continue;
        }
        // Describe the cycle with member identities and one site per edge
        // inside the component.
        let members: HashSet<&str> = scc.iter().copied().collect();
        let mut sites: Vec<String> = Vec::new();
        let mut first: Option<&Edge> = None;
        for (&(from, to), &e) in repr.iter() {
            if members.contains(from) && members.contains(to) {
                sites.push(format!(
                    "{} -> {} at {}:{}",
                    from,
                    to,
                    e.path.display(),
                    e.line
                ));
                if first.is_none() || e.line < first.map(|f| f.line).unwrap_or(usize::MAX) {
                    first = Some(e);
                }
            }
        }
        sites.sort();
        let e = first.expect("cyclic SCC has at least one internal edge");
        let mut names: Vec<&str> = scc.to_vec();
        names.sort_unstable();
        out.push(Violation {
            path: e.path.clone(),
            line: e.line,
            rule: "lock-order",
            message: format!(
                "lock-acquisition cycle among {{{}}}: {}; a thread in each \
                 arc can block the other forever — break the cycle or \
                 annotate every deliberate edge with `// lock-order: A -> B`",
                names.join(", "),
                sites.join("; ")
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::analyze;

    fn edges_of(src: &str) -> Vec<Edge> {
        let structure = analyze(src);
        let raw: Vec<&str> = src.lines().collect();
        let class = FileClass {
            crate_name: "core",
            is_shim: false,
            is_bin: false,
        };
        extract(Path::new("crates/core/src/x.rs"), class, &structure, &raw)
    }

    fn pairs(edges: &[Edge]) -> Vec<(String, String)> {
        edges
            .iter()
            .map(|e| (e.outer.clone(), e.inner.clone()))
            .collect()
    }

    #[test]
    fn let_bound_guard_creates_edge() {
        let e = edges_of("fn f(&self) { let g = self.a.lock(); self.b.lock().push(1); }");
        assert_eq!(pairs(&e), [("core/a".to_string(), "core/b".to_string())]);
        assert_eq!(e[0].fn_name, "f");
    }

    #[test]
    fn temporary_guard_spans_one_statement() {
        let src = "fn f(&self) {\n    let n = self.pools.lock().len() + self.spaces.lock().len();\n    self.other.lock().touch();\n}";
        let e = edges_of(src);
        // pools is live when spaces is taken (same statement), but neither
        // survives into the next statement.
        assert_eq!(
            pairs(&e),
            [("core/pools".to_string(), "core/spaces".to_string())]
        );
    }

    #[test]
    fn drop_releases_named_guard() {
        let e = edges_of("fn f(&self) { let g = self.a.lock(); drop(g); self.b.lock().push(1); }");
        assert!(e.is_empty(), "dropped guard must not create an edge: {e:?}");
    }

    #[test]
    fn scope_close_releases_guard() {
        let e = edges_of("fn f(&self) { { let g = self.a.lock(); } self.b.lock().push(1); }");
        assert!(e.is_empty(), "scoped guard must not leak: {e:?}");
    }

    #[test]
    fn underscore_binding_drops_immediately() {
        let e = edges_of("fn f(&self) { let _ = self.a.lock(); self.b.lock().push(1); }");
        assert!(e.is_empty(), "`let _` guard dies at once: {e:?}");
    }

    #[test]
    fn named_underscore_guard_lives() {
        let e = edges_of("fn f(&self) { let _g = self.a.lock(); self.b.lock().push(1); }");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn if_condition_temporary_covers_the_block() {
        // Rust 2021 temporary lifetimes: the condition's guard lives for
        // the whole `if` statement.
        let e = edges_of(
            "fn f(&self) { if self.a.lock().ready { self.b.lock().go(); } self.c.lock().done(); }",
        );
        assert_eq!(
            pairs(&e),
            [("core/a".to_string(), "core/b".to_string())],
            "a covers b inside the if, but dies before c"
        );
    }

    #[test]
    fn index_expressions_resolve_to_the_field() {
        let e = edges_of(
            "fn f(&self) { let g = self.shards[i % N].lock(); self.stats[k].lock().bump(); }",
        );
        assert_eq!(
            pairs(&e),
            [("core/shards".to_string(), "core/stats".to_string())]
        );
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let e = edges_of("fn f(&self) { let g = self.map.read(); self.data.write().clear(); }");
        assert_eq!(
            pairs(&e),
            [("core/map".to_string(), "core/data".to_string())]
        );
    }

    #[test]
    fn test_gated_fns_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(&self) { let g = self.a.lock(); self.b.lock().x(); }\n}";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn annotation_waives_edge() {
        let src = "fn f(&self) {\n    let g = self.a.lock();\n    // lock-order: core/a -> core/b (address-ordered pair)\n    self.b.lock().push(1);\n}";
        let e = edges_of(src);
        assert_eq!(e.len(), 1);
        assert!(e[0].waived, "annotated edge must be waived");
    }

    #[test]
    fn seeded_inversion_is_caught_and_hierarchy_order_passes() {
        let hierarchy = Hierarchy::from_list(&["core/a", "core/b"]);
        let ok = edges_of("fn f(&self) { let g = self.a.lock(); self.b.lock().x(); }");
        assert!(check(&ok, &hierarchy).is_empty(), "declared order is clean");
        let inverted = edges_of("fn g(&self) { let g = self.b.lock(); self.a.lock().x(); }");
        let v = check(&inverted, &hierarchy);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("inversion"), "{}", v[0].message);
    }

    #[test]
    fn seeded_cycle_is_flagged() {
        let mut edges = edges_of("fn f(&self) { let g = self.a.lock(); self.b.lock().x(); }");
        edges.extend(edges_of(
            "fn g(&self) { let g = self.b.lock(); self.a.lock().x(); }",
        ));
        let v = check(&edges, &Hierarchy::from_list(&["core/a", "core/b"]));
        assert!(
            v.iter().any(|x| x.message.contains("cycle")),
            "cycle must be reported: {v:?}"
        );
    }

    #[test]
    fn declared_exception_waives_the_cycle() {
        let hierarchy = Hierarchy::from_list(&["core/a", "core/b"]);
        let mut edges = edges_of("fn f(&self) { let g = self.a.lock(); self.b.lock().x(); }");
        edges.extend(edges_of(
            "fn g(&self) {\n    let g = self.b.lock();\n    // lock-order: core/b -> core/a (disjoint instance sets)\n    self.a.lock().x();\n}",
        ));
        let v = check(&edges, &hierarchy);
        assert!(v.is_empty(), "annotated back-edge must waive: {v:?}");
    }

    #[test]
    fn undeclared_locks_in_edges_are_flagged() {
        let edges = edges_of("fn f(&self) { let g = self.a.lock(); self.b.lock().x(); }");
        let v = check(&edges, &Hierarchy::default());
        assert_eq!(v.len(), 1);
        assert!(
            v[0].message.contains("not in the declared hierarchy"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn self_deadlock_is_a_cycle() {
        let edges = edges_of("fn f(&self) { let g = self.a.lock(); self.a.lock().x(); }");
        let v = check(&edges, &Hierarchy::from_list(&["core/a"]));
        assert!(
            v.iter().any(|x| x.message.contains("cycle")),
            "self-edge is a re-entrant deadlock: {v:?}"
        );
    }

    #[test]
    fn hierarchy_parses_from_design_fence() {
        let md = "## 11. Static analysis\n\nblah\n\n```lock-order\n# outermost first\ncore/state\n\ncore/pools  (arena)\ncore/spaces\n```\n\nafter\n";
        let h = Hierarchy::parse_design(md);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pos("core/state"), Some(0));
        assert_eq!(h.pos("core/pools"), Some(1));
        assert_eq!(h.pos("core/spaces"), Some(2));
        assert!(Hierarchy::parse_design("no fence here").is_empty());
    }

    #[test]
    fn guards_returned_from_functions_are_not_tracked() {
        // `lock_for_gather()` is not a raw acquisition; documented
        // approximation.
        let e = edges_of("fn f(&self) { let g = self.bin.lock_for_gather(); self.b.lock().x(); }");
        assert!(e.is_empty());
    }
}
