//! Workspace automation driver (`cargo xtask <command>`).
//!
//! Commands:
//! * `lint` — run the static analysis gate (see the `lint` module docs).

mod lint;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

/// Finds the workspace root: walks up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  lint    run the workspace analysis gate"
    );
}

fn run_lint() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("xtask: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    match lint::run(&root) {
        Ok((scanned, violations)) if violations.is_empty() => {
            println!("xtask lint: {scanned} files scanned, 0 violations");
            ExitCode::SUCCESS
        }
        Ok((scanned, violations)) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "\nxtask lint: {scanned} files scanned, {} violation(s)",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            ExitCode::FAILURE
        }
    }
}
