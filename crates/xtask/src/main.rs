//! Workspace automation driver (`cargo xtask <command>`).
//!
//! Commands:
//! * `lint` — run the static analysis gate (see the `lint` module docs).
//!
//! `lint` options:
//! * `--format json` — emit the machine-readable report instead of text.
//! * `--out <path>` — write the report to a file instead of stdout.
//! * `--report` — print the per-crate unsafe census (text mode).
//! * `--baseline <path>` — baseline file (default `lint-baseline.json`
//!   at the workspace root; missing file = empty baseline).
//! * `--write-baseline` — record the current violations as the new
//!   baseline and exit successfully.

mod json;
mod lint;
mod lockgraph;
mod scan;
mod tokens;
mod unsafe_audit;

use std::path::PathBuf;
use std::process::ExitCode;

/// Finds the workspace root: walks up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\ncommands:\n  \
         lint [--format json] [--out PATH] [--report] [--baseline PATH] \
         [--write-baseline]\n          run the workspace analysis gate"
    );
}

/// Parsed `lint` options.
struct LintOptions {
    format_json: bool,
    report_census: bool,
    write_baseline: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_lint_options(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions {
        format_json: false,
        report_census: false,
        write_baseline: false,
        out: None,
        baseline: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.format_json = true,
                Some("text") => opts.format_json = false,
                other => {
                    return Err(format!(
                        "--format expects `json` or `text`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--format=json" => opts.format_json = true,
            "--format=text" => opts.format_json = false,
            "--report" => opts.report_census = true,
            "--write-baseline" => opts.write_baseline = true,
            "--out" => {
                let path = it.next().ok_or("--out expects a path")?;
                opts.out = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let path = it.next().ok_or("--baseline expects a path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    Ok(opts)
}

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_options(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("xtask lint: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = workspace_root() else {
        eprintln!("xtask: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    let report = match lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: io error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    if opts.write_baseline {
        let baseline = lint::Baseline::from_violations(&report.violations);
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: recorded {} violation(s) into {}",
            report.violations.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match lint::Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("xtask lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => lint::Baseline::default(),
    };
    let (active, suppressed) = baseline.filter(report.violations);

    if opts.format_json {
        let text = lint::render_json(report.scanned, &active, suppressed, &report.census);
        if let Some(out) = &opts.out {
            if let Err(e) = std::fs::write(out, &text) {
                eprintln!("xtask lint: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        } else {
            print!("{text}");
        }
    } else {
        for v in &active {
            println!("{v}");
        }
        if opts.report_census {
            println!("\nunsafe census (per crate, non-test sites):");
            let mut sum = crate::unsafe_audit::UnsafeCensus::default();
            for (crate_name, c) in &report.census {
                sum.absorb(c);
                println!(
                    "  {crate_name:<10} blocks={} fns={} impls={} traits={} externs={} total={}",
                    c.blocks,
                    c.fns,
                    c.impls,
                    c.traits,
                    c.externs,
                    c.total()
                );
            }
            println!("  {:<10} total={}", "(all)", sum.total());
        }
        let mut summary = format!(
            "xtask lint: {} files scanned, {} violation(s)",
            report.scanned,
            active.len()
        );
        if suppressed > 0 {
            summary.push_str(&format!(" ({suppressed} suppressed by baseline)"));
        }
        if active.is_empty() {
            println!("{summary}");
        } else {
            println!("\n{summary}");
        }
    }

    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
