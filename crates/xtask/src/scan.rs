//! A line-oriented Rust source scanner for the lint rules.
//!
//! The lint rules match on *code* text only, so the scanner strips string
//! literals, character literals, and comments (which would otherwise
//! produce false positives — not least inside this very crate, whose rule
//! patterns appear as string literals). It also tracks brace depth to skip
//! `#[cfg(test)]`-gated items, because unit-test modules inside library
//! sources are allowed to use anything.

/// One source line, classified.
#[derive(Debug)]
pub struct CodeLine {
    /// 1-based line number.
    pub number: usize,
    /// The original line text (used for waiver-comment lookups).
    pub raw: String,
    /// The line with strings, char literals, and comments blanked out.
    pub code: String,
    /// Whether the line sits inside a test-gated item (`#[cfg(test)]`,
    /// `#[cfg(all(test, ...))]`, or `#[test]`).
    pub in_test: bool,
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Nested block comment (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` followed by `n` `#`s.
    RawStr(u32),
}

/// Whether `hay` contains `needle` as a whole word (no identifier
/// characters adjacent).
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Strips comments/strings and flags test-gated regions.
pub fn scan(source: &str) -> Vec<CodeLine> {
    let mut state = State::Normal;
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which a test-gated item opened; lines are `in_test` while
    // the current depth is strictly greater.
    let mut test_until: Option<i64> = None;
    // A test attribute was seen and we are waiting for the item's `{`.
    let mut pending_test = false;

    for (idx, raw_line) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw_line.len());
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match state {
                State::Normal => match c {
                    '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
                    '/' if bytes.get(i + 1) == Some(&'*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' if matches!(bytes.get(i + 1), Some('"' | '#')) => {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            code.push(' ');
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal is 'x' or an
                        // escape; a lifetime is 'ident with no closing '.
                        if bytes.get(i + 1) == Some(&'\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push(' ');
                            i = j + 1;
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push(' ');
                            i += 3;
                        } else {
                            code.push(c); // lifetime tick
                            i += 1;
                        }
                    }
                    '{' => {
                        depth += 1;
                        if pending_test {
                            pending_test = false;
                            if test_until.is_none() {
                                test_until = Some(depth - 1);
                            }
                        }
                        code.push(c);
                        i += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if test_until.is_some_and(|d| depth <= d) {
                            test_until = None;
                        }
                        code.push(c);
                        i += 1;
                    }
                    ';' => {
                        // `#[cfg(test)] mod tests;` — attribute consumed by
                        // a braceless item.
                        pending_test = false;
                        code.push(c);
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::BlockComment(ref mut n) => {
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        *n -= 1;
                        i += 2;
                        if *n == 0 {
                            state = State::Normal;
                        }
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        *n += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        state = State::Normal;
                        i += 1;
                    }
                    _ => i += 1,
                },
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0u32;
                        while seen < hashes && bytes.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            state = State::Normal;
                            i = j;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        // An unterminated plain string at end-of-line is a syntax error in
        // real code; recover to Normal so one bad line cannot hide the rest
        // of the file. Raw strings and block comments legitimately span
        // lines.
        if matches!(state, State::Str) {
            state = State::Normal;
        }

        let trimmed = code.trim_start();
        let in_test_now = test_until.is_some() || pending_test;
        if trimmed.starts_with("#[") && is_test_attr(trimmed) {
            pending_test = true;
        }
        out.push(CodeLine {
            number: idx + 1,
            raw: raw_line.to_string(),
            code,
            in_test: in_test_now || test_until.is_some() || pending_test,
        });
    }
    out
}

/// Whether an attribute line gates a test item: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, not(loom)))]`, etc.
fn is_test_attr(attr: &str) -> bool {
    contains_word(attr, "test") || contains_word(attr, "tests")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = code_of("let x = 1; // Ordering::Relaxed\n/* std::sync */ let y = 2;");
        assert!(!c[0].contains("Ordering"));
        assert!(c[0].contains("let x = 1;"));
        assert!(!c[1].contains("std::sync"));
        assert!(c[1].contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("/* a /* b */ still comment */ let z = 3;");
        assert!(!c[0].contains('a'));
        assert!(c[0].contains("let z = 3;"));
    }

    #[test]
    fn strips_string_literals_and_keeps_code() {
        let c = code_of("let s = \".unwrap()\"; s.len();");
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("s.len();"));
    }

    #[test]
    fn braces_inside_strings_do_not_affect_depth() {
        let src =
            "#[cfg(test)]\nmod t {\n    let f = format!(\"{}{{\", 1);\n    bad();\n}\nafter();";
        let lines = scan(src);
        assert!(lines[3].in_test, "line inside test mod");
        assert!(!lines[5].in_test, "line after test mod closed");
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"first .unwrap()\nsecond std::sync\"#;\nreal();";
        let c = code_of(src);
        assert!(!c[0].contains(".unwrap()"));
        assert!(!c[1].contains("std::sync"));
        assert!(c[2].contains("real();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code_of("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(c[0].contains("fn f<'a>"));
        assert!(c[0].contains("{ x }"));
    }

    #[test]
    fn char_literal_with_brace_does_not_break_depth() {
        let src = "#[cfg(test)]\nfn t() {\n    let c = '{';\n    inner();\n}\nouter();";
        let lines = scan(src);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        let src = "#[cfg(all(test, not(loom)))]\nmod tests {\n    use std::sync::Arc;\n}\nlib();";
        let lines = scan(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn attest_like_words_do_not_gate() {
        let src = "#[cfg(feature = \"attestation\")]\nfn f() {\n    body();\n}";
        let lines = scan(src);
        assert!(!lines[2].in_test, "'attestation' must not count as 'test'");
    }

    #[test]
    fn braceless_test_attr_clears_on_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() {\n    body();\n}";
        let lines = scan(src);
        assert!(!lines[3].in_test);
    }

    #[test]
    fn contains_word_boundaries() {
        assert!(contains_word("cfg(test)", "test"));
        assert!(contains_word("all(test, not(loom))", "test"));
        assert!(!contains_word("attestation", "test"));
        assert!(!contains_word("latest", "test"));
    }
}
