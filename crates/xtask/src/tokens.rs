//! A token-level scanner for the analyzer rules.
//!
//! The line-oriented scanner in [`scan`](crate::scan) is enough for rules
//! that pattern-match a single line, but the unsafe-audit and lock-order
//! rules need *structure*: which `unsafe` keyword opens a block versus an
//! `impl`, where a function body starts and ends, whether a mutex guard
//! bound three statements ago is still live. This module produces a proper
//! token stream with spans and a structural index on top of it:
//!
//! * [`tokenize`] — lexes Rust source into [`Token`]s with 1-based
//!   line/column spans. String literals of every flavour (`"…"`, `r"…"`,
//!   `r#"…"#`, `b"…"`, `br#"…"#`), char and byte literals (including
//!   `'\u{…}'` escapes), lifetimes, raw identifiers, and nested block
//!   comments are handled, so brace tokens are *real* braces — a `{` inside
//!   a string or comment never reaches the structural pass.
//! * [`analyze`] — walks the token stream once and extracts
//!   [`FnItem`] boundaries and [`UnsafeSite`]s (block / `fn` / `impl` /
//!   `trait` / `extern`), each flagged `in_test` when it sits in a
//!   `#[cfg(test)]`/`#[test]`-gated region.
//!
//! The lexer is deliberately lossy where the rules do not care: literal
//! *content* is elided (kind + span only), numeric suffixes are not
//! validated, and `<`/`>` are plain puncts (generics carry no structural
//! weight here). It must never be lossy about delimiters or identifiers.

/// A delimiter class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Brace,
    Paren,
    Bracket,
}

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`text` holds it; raw identifiers keep their
    /// `r#` prefix stripped).
    Ident,
    /// A lifetime tick-identifier (`text` holds the name without the tick).
    Lifetime,
    /// Numeric literal (`text` holds the digits as written).
    Number,
    /// Any string / char / byte-string literal; content elided.
    Literal,
    /// A single punctuation character (`text` holds it).
    Punct,
    Open(Delim),
    Close(Delim),
}

/// One token with its span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

impl Token {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Source characters with precomputed positions.
struct Cursor {
    chars: Vec<char>,
    lines: Vec<usize>,
    cols: Vec<usize>,
}

impl Cursor {
    fn new(source: &str) -> Self {
        let mut chars = Vec::with_capacity(source.len());
        let mut lines = Vec::with_capacity(source.len());
        let mut cols = Vec::with_capacity(source.len());
        let (mut line, mut col) = (1usize, 1usize);
        for c in source.chars() {
            chars.push(c);
            lines.push(line);
            cols.push(col);
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Self { chars, lines, cols }
    }

    fn get(&self, i: usize) -> Option<char> {
        self.chars.get(i).copied()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream. Never fails: malformed input
/// degrades to best-effort tokens (an unterminated literal runs to end of
/// file), because the analyzer must not panic on code rustc has not
/// blessed yet.
pub fn tokenize(source: &str) -> Vec<Token> {
    let cur = Cursor::new(source);
    let n = cur.chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;

    let push = |out: &mut Vec<Token>, kind: TokenKind, text: String, at: usize| {
        out.push(Token {
            kind,
            text,
            line: cur.lines[at],
            col: cur.cols[at],
        });
    };

    while i < n {
        let c = cur.chars[i];
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && cur.get(i + 1) == Some('/') {
            while i < n && cur.chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && cur.get(i + 1) == Some('*') {
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if cur.chars[i] == '/' && cur.get(i + 1) == Some('*') {
                    depth += 1;
                    i += 2;
                } else if cur.chars[i] == '*' && cur.get(i + 1) == Some('/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String-ish literals, longest prefix first: br#"…"#, br"…", b"…",
        // b'…', r#"…"#, r"…", then plain "…" and '…'-or-lifetime.
        if c == 'b' || c == 'r' {
            // Where the hashes/quote may start: after `br`, or after `b`/`r`.
            let raw_at = if c == 'b' && cur.get(i + 1) == Some('r') {
                i + 2
            } else {
                i + 1
            };
            // b'…' byte char literal.
            if c == 'b' && cur.get(i + 1) == Some('\'') {
                let end = consume_char_literal(&cur, i + 1);
                push(&mut out, TokenKind::Literal, String::new(), i);
                i = end;
                continue;
            }
            // Raw (byte) string: count hashes, require a quote.
            let mut hashes = 0usize;
            let mut j = raw_at;
            if c == 'r' || (c == 'b' && cur.get(i + 1) == Some('r')) {
                while cur.get(j) == Some('#') {
                    hashes += 1;
                    j += 1;
                }
            }
            // Any of the b/r/br prefixes followed by (hashes and) a quote
            // is a string literal.
            if cur.get(j) == Some('"') {
                // For plain b"…" hashes is 0 and j == i + 1.
                let mut k = j + 1;
                'raw: while k < n {
                    if cur.chars[k] == '\\' && hashes == 0 {
                        // Non-raw byte strings still process escapes.
                        if c == 'b' && cur.get(i + 1) != Some('r') {
                            k += 2;
                            continue;
                        }
                    }
                    if cur.chars[k] == '"' {
                        let mut seen = 0usize;
                        while seen < hashes && cur.get(k + 1 + seen) == Some('#') {
                            seen += 1;
                        }
                        if seen == hashes {
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                push(&mut out, TokenKind::Literal, String::new(), i);
                i = k;
                continue;
            }
            // `r#ident` raw identifier.
            if c == 'r' && cur.get(i + 1) == Some('#') && cur.get(i + 2).is_some_and(is_ident_start)
            {
                let mut k = i + 2;
                let mut text = String::new();
                while k < n && is_ident_continue(cur.chars[k]) {
                    text.push(cur.chars[k]);
                    k += 1;
                }
                push(&mut out, TokenKind::Ident, text, i);
                i = k;
                continue;
            }
            // Fall through: plain identifier starting with b/r.
        }
        if c == '"' {
            let mut k = i + 1;
            while k < n {
                match cur.chars[k] {
                    '\\' => k += 2,
                    '"' => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            push(&mut out, TokenKind::Literal, String::new(), i);
            i = k;
            continue;
        }
        if c == '\'' {
            // Escape → char literal ('\n', '\u{1F600}', '\\', '\'').
            if cur.get(i + 1) == Some('\\') {
                let end = consume_char_literal(&cur, i);
                push(&mut out, TokenKind::Literal, String::new(), i);
                i = end;
                continue;
            }
            // Simple one-char literal 'x' — including digits and
            // punctuation like '{' that must not disturb brace depth.
            if cur.get(i + 2) == Some('\'') && cur.get(i + 1) != Some('\'') {
                push(&mut out, TokenKind::Literal, String::new(), i);
                i += 3;
                continue;
            }
            // Lifetime: tick + identifier run with no closing tick.
            if cur.get(i + 1).is_some_and(is_ident_start) {
                let mut k = i + 1;
                let mut text = String::new();
                while k < n && is_ident_continue(cur.chars[k]) {
                    text.push(cur.chars[k]);
                    k += 1;
                }
                push(&mut out, TokenKind::Lifetime, text, i);
                i = k;
                continue;
            }
            // Stray tick; treat as punct and move on.
            push(&mut out, TokenKind::Punct, "'".to_string(), i);
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let mut k = i;
            let mut text = String::new();
            while k < n && is_ident_continue(cur.chars[k]) {
                text.push(cur.chars[k]);
                k += 1;
            }
            push(&mut out, TokenKind::Ident, text, i);
            i = k;
            continue;
        }
        if c.is_ascii_digit() {
            let mut k = i;
            let mut text = String::new();
            while k < n {
                let d = cur.chars[k];
                if is_ident_continue(d) {
                    text.push(d);
                    k += 1;
                } else if d == '.'
                    && cur.get(k + 1).is_some_and(|e| e.is_ascii_digit())
                    && !text.contains('.')
                {
                    // `1.5` is one number; `0..10` is number-punct-punct.
                    text.push(d);
                    k += 1;
                } else {
                    break;
                }
            }
            push(&mut out, TokenKind::Number, text, i);
            i = k;
            continue;
        }
        let kind = match c {
            '{' => TokenKind::Open(Delim::Brace),
            '}' => TokenKind::Close(Delim::Brace),
            '(' => TokenKind::Open(Delim::Paren),
            ')' => TokenKind::Close(Delim::Paren),
            '[' => TokenKind::Open(Delim::Bracket),
            ']' => TokenKind::Close(Delim::Bracket),
            _ => TokenKind::Punct,
        };
        push(&mut out, kind, c.to_string(), i);
        i += 1;
    }
    out
}

/// Consumes a (byte) char literal starting at the opening tick `at`,
/// returning the index just past the closing tick. Handles `'\u{…}'`,
/// single-char escapes, and runs to end of line on malformed input.
fn consume_char_literal(cur: &Cursor, at: usize) -> usize {
    let n = cur.chars.len();
    let mut k = at + 1;
    if cur.get(k) == Some('\\') {
        k += 1;
        if cur.get(k) == Some('u') {
            // \u{…}
            k += 1;
            while k < n && cur.chars[k] != '}' && cur.chars[k] != '\n' {
                k += 1;
            }
            k += 1; // past '}'
        } else {
            k += 1; // the escaped char
        }
    } else if k < n {
        k += 1;
    }
    // Closing tick (tolerate its absence at EOL).
    if cur.get(k) == Some('\'') {
        k += 1;
    }
    k
}

/// Kind of an `unsafe` occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }`.
    Block,
    /// `unsafe fn …`.
    Fn,
    /// `unsafe impl …`.
    Impl,
    /// `unsafe trait …`.
    Trait,
    /// `unsafe extern { … }`.
    Extern,
}

impl UnsafeKind {
    /// Human-readable site description.
    pub fn describe(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Trait => "unsafe trait",
            UnsafeKind::Extern => "unsafe extern block",
        }
    }
}

/// One `unsafe` keyword with its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub line: usize,
    pub col: usize,
    /// Inside a `#[cfg(test)]`/`#[test]`-gated region.
    pub in_test: bool,
}

/// One `fn` item with its body's token extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    pub line: usize,
    /// Token indices of the body's `{` and matching `}`; `None` for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]`/`#[test]`-gated region.
    pub in_test: bool,
}

/// Token stream plus the structural index the analyzer rules consume.
#[derive(Debug)]
pub struct Structure {
    pub tokens: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Finds the index of the delimiter matching the `Open` at `open`.
pub fn matching(tokens: &[Token], open: usize) -> Option<usize> {
    let TokenKind::Open(want) = tokens[open].kind else {
        return None;
    };
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Open(d) if d == want => depth += 1,
            TokenKind::Close(d) if d == want => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the attribute tokens in `tokens[lo..hi]` gate a test item.
fn attr_is_test(tokens: &[Token], lo: usize, hi: usize) -> bool {
    tokens[lo..hi]
        .iter()
        .any(|t| t.is_ident("test") || t.is_ident("tests"))
}

/// Tokenizes and structurally indexes `source`.
pub fn analyze(source: &str) -> Structure {
    let tokens = tokenize(source);
    let n = tokens.len();
    let mut in_test = vec![false; n];

    // Pass 1: test-gated regions. A `#[…test…]` (or `#![…]`) attribute
    // marks everything from itself to the end of the attributed item — the
    // matching `}` of the item's first body brace, or the terminating `;`
    // for braceless items (`mod tests;`).
    let mut i = 0usize;
    while i < n {
        if tokens[i].is_punct('#') {
            let mut open = i + 1;
            if open < n && tokens[open].is_punct('!') {
                open += 1;
            }
            if open < n && tokens[open].kind == TokenKind::Open(Delim::Bracket) {
                if let Some(close) = matching(&tokens, open) {
                    if attr_is_test(&tokens, open + 1, close) {
                        // Walk to the attributed item's end. Any nested
                        // delimiter groups on the way (generics don't
                        // count, but `fn f(x: T)` parens do) are skipped
                        // via depth counting.
                        let mut depth = 0i64;
                        let mut j = close + 1;
                        let mut end = n.saturating_sub(1);
                        while j < n {
                            match tokens[j].kind {
                                TokenKind::Open(Delim::Brace) if depth == 0 => {
                                    end = matching(&tokens, j).unwrap_or(n - 1);
                                    break;
                                }
                                TokenKind::Open(_) => depth += 1,
                                TokenKind::Close(_) => depth -= 1,
                                TokenKind::Punct if tokens[j].is_punct(';') && depth == 0 => {
                                    end = j;
                                    break;
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        for flag in in_test.iter_mut().take(end + 1).skip(i) {
                            *flag = true;
                        }
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }

    // Pass 2: fn items and unsafe sites.
    let mut fns = Vec::new();
    let mut unsafe_sites = Vec::new();
    for i in 0..n {
        let t = &tokens[i];
        if t.is_ident("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            // Find the body: first `{` before a `;` at delimiter depth 0
            // (parens of the signature and brackets of slice types are
            // skipped by depth).
            let mut depth = 0i64;
            let mut body = None;
            let mut j = i + 2;
            while j < n {
                match tokens[j].kind {
                    TokenKind::Open(Delim::Brace) if depth == 0 => {
                        body = matching(&tokens, j).map(|c| (j, c));
                        break;
                    }
                    TokenKind::Open(_) => depth += 1,
                    TokenKind::Close(_) => depth -= 1,
                    TokenKind::Punct if tokens[j].is_punct(';') && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            fns.push(FnItem {
                name: name_tok.text.clone(),
                line: t.line,
                body,
                in_test: in_test[i],
            });
        }
        if t.is_ident("unsafe") {
            let kind = match tokens.get(i + 1) {
                Some(next) if next.is_ident("fn") => UnsafeKind::Fn,
                Some(next) if next.is_ident("impl") => UnsafeKind::Impl,
                Some(next) if next.is_ident("trait") => UnsafeKind::Trait,
                Some(next) if next.is_ident("extern") => UnsafeKind::Extern,
                Some(next) if next.kind == TokenKind::Open(Delim::Brace) => UnsafeKind::Block,
                // `unsafe(no_mangle)` in attributes, `unsafe` ahead of an
                // ABI string, or malformed input: treat as a block so the
                // audit errs toward flagging.
                _ => UnsafeKind::Block,
            };
            unsafe_sites.push(UnsafeSite {
                kind,
                line: t.line,
                col: t.col,
                in_test: in_test[i],
            });
        }
    }

    Structure {
        tokens,
        fns,
        unsafe_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders a token as `kind:text` for compact oracle comparison.
    fn brief(t: &Token) -> String {
        match t.kind {
            TokenKind::Ident => format!("i:{}", t.text),
            TokenKind::Lifetime => format!("l:{}", t.text),
            TokenKind::Number => format!("n:{}", t.text),
            TokenKind::Literal => "str".to_string(),
            TokenKind::Punct => format!("p:{}", t.text),
            TokenKind::Open(Delim::Brace) => "{".to_string(),
            TokenKind::Close(Delim::Brace) => "}".to_string(),
            TokenKind::Open(Delim::Paren) => "(".to_string(),
            TokenKind::Close(Delim::Paren) => ")".to_string(),
            TokenKind::Open(Delim::Bracket) => "[".to_string(),
            TokenKind::Close(Delim::Bracket) => "]".to_string(),
        }
    }

    fn briefs(src: &str) -> Vec<String> {
        tokenize(src).iter().map(brief).collect()
    }

    #[test]
    fn oracle_byte_strings() {
        // Braces and rule patterns inside byte strings must vanish.
        let got = briefs(r#"let b = b"unsafe { } .lock()";"#);
        assert_eq!(got, ["i:let", "i:b", "p:=", "str", "p:;"]);
    }

    #[test]
    fn oracle_raw_byte_strings_span_lines() {
        let src = "let x = br#\"line one {\nline two }\"#;\ndone();";
        let got = briefs(src);
        assert_eq!(
            got,
            ["i:let", "i:x", "p:=", "str", "p:;", "i:done", "(", ")", "p:;"]
        );
        // The token after the literal is on line 2 (the literal spans
        // lines) and `done` is on line 3.
        let toks = tokenize(src);
        assert_eq!(toks[3].line, 1, "literal starts on line 1");
        assert_eq!(toks[5].text, "done");
        assert_eq!(toks[5].line, 3);
    }

    #[test]
    fn oracle_nested_generics_with_lifetimes() {
        let got = briefs("fn f<'a, T: Iter<Item = &'a str>>(x: &'a [u8]) -> Map<'a, T> { x }");
        assert_eq!(
            got,
            [
                "i:fn", "i:f", "p:<", "l:a", "p:,", "i:T", "p::", "i:Iter", "p:<", "i:Item", "p:=",
                "p:&", "l:a", "i:str", "p:>", "p:>", "(", "i:x", "p::", "p:&", "l:a", "[", "i:u8",
                "]", ")", "p:-", "p:>", "i:Map", "p:<", "l:a", "p:,", "i:T", "p:>", "{", "i:x",
                "}"
            ]
        );
    }

    #[test]
    fn oracle_unicode_escape_char_literal() {
        // '\u{1F600}' must be one literal; its inner braces must not
        // perturb brace structure.
        let got = briefs("let c = '\\u{1F600}'; { x }");
        assert_eq!(got, ["i:let", "i:c", "p:=", "str", "p:;", "{", "i:x", "}"]);
    }

    #[test]
    fn oracle_char_literals_vs_lifetimes() {
        let got = briefs("let a: (char, &'static str) = ('{', \"y\");");
        assert_eq!(
            got,
            [
                "i:let", "i:a", "p::", "(", "i:char", "p:,", "p:&", "l:static", "i:str", ")",
                "p:=", "(", "str", "p:,", "str", ")", "p:;"
            ]
        );
    }

    #[test]
    fn oracle_macro_with_unbalanced_braces_in_strings() {
        // The string contains what looks like an unbalanced close brace;
        // real structure stays balanced.
        let src = "macro_rules! m { () => { println!(\"} } }{\") } }";
        let toks = tokenize(src);
        let depth: i64 = toks
            .iter()
            .map(|t| match t.kind {
                TokenKind::Open(Delim::Brace) => 1,
                TokenKind::Close(Delim::Brace) => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0, "brace depth must balance: {toks:?}");
    }

    #[test]
    fn oracle_raw_identifiers_and_escaped_quotes() {
        let got = briefs("let r#fn = \"a \\\" b\"; let r2 = r\"no \\ escapes\";");
        assert_eq!(
            got,
            ["i:let", "i:fn", "p:=", "str", "p:;", "i:let", "i:r2", "p:=", "str", "p:;"]
        );
    }

    #[test]
    fn oracle_numbers() {
        let got = briefs("for i in 0..10 { let f = 1.5e3; let h = 0xFFu32; }");
        assert_eq!(
            got,
            [
                "i:for",
                "i:i",
                "i:in",
                "n:0",
                "p:.",
                "p:.",
                "n:10",
                "{",
                "i:let",
                "i:f",
                "p:=",
                "n:1.5e3",
                "p:;",
                "i:let",
                "i:h",
                "p:=",
                "n:0xFFu32",
                "p:;",
                "}"
            ]
        );
    }

    #[test]
    fn spans_are_one_based_line_and_col() {
        let toks = tokenize("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }

    #[test]
    fn structure_finds_fn_bodies() {
        let s = analyze("fn a(x: u32) -> u32 { x }\nfn decl();\nfn b() { { nested(); } }");
        assert_eq!(s.fns.len(), 3);
        assert_eq!(s.fns[0].name, "a");
        assert!(s.fns[0].body.is_some());
        assert_eq!(s.fns[1].name, "decl");
        assert!(s.fns[1].body.is_none(), "bodyless decl has no body");
        let (open, close) = s.fns[2].body.unwrap();
        assert_eq!(s.tokens[open].kind, TokenKind::Open(Delim::Brace));
        assert_eq!(s.tokens[close].kind, TokenKind::Close(Delim::Brace));
        assert_eq!(matching(&s.tokens, open), Some(close));
    }

    #[test]
    fn structure_classifies_unsafe_sites() {
        let src = "unsafe fn f() {}\nunsafe impl Send for X {}\nunsafe trait T {}\n\
                   fn g() { unsafe { std::hint::unreachable_unchecked() } }";
        let s = analyze(src);
        let kinds: Vec<UnsafeKind> = s.unsafe_sites.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            [
                UnsafeKind::Fn,
                UnsafeKind::Impl,
                UnsafeKind::Trait,
                UnsafeKind::Block
            ]
        );
        assert_eq!(s.unsafe_sites[3].line, 4);
    }

    #[test]
    fn structure_marks_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n\
                   fn lib2() { unsafe { y() } }";
        let s = analyze(src);
        assert_eq!(s.unsafe_sites.len(), 2);
        assert!(s.unsafe_sites[0].in_test, "unsafe inside #[cfg(test)] mod");
        assert!(!s.unsafe_sites[1].in_test, "library unsafe after the mod");
        let t = s.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        let lib2 = s.fns.iter().find(|f| f.name == "lib2").unwrap();
        assert!(!lib2.in_test);
    }

    #[test]
    fn test_attr_with_braces_in_string_does_not_leak() {
        // An attribute containing a string with a brace must not confuse
        // the item-extent walk.
        let src = "#[cfg(all(test, feature = \"x{\"))]\nfn t() { a(); }\nfn lib() { b(); }";
        let s = analyze(src);
        let t = s.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        let lib = s.fns.iter().find(|f| f.name == "lib").unwrap();
        assert!(!lib.in_test);
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { unsafe { x() } }";
        let s = analyze(src);
        assert_eq!(s.unsafe_sites.len(), 1);
        assert!(!s.unsafe_sites[0].in_test);
    }

    #[test]
    fn attest_like_identifiers_do_not_gate() {
        let src = "#[cfg(feature = \"attestation\")]\nfn f() { unsafe { x() } }";
        let s = analyze(src);
        assert!(!s.unsafe_sites[0].in_test);
    }
}
