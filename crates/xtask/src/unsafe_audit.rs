//! The `unsafe-audit` rule: every `unsafe` site carries a written
//! justification.
//!
//! The workspace's `unsafe` surface is tiny and deliberate — lifetime
//! erasure in the runtime's scoped-job submission, the zero-copy page
//! reinterpretation in the graph decoder, and the `UnsafeCell` plumbing of
//! the vendored model checker. Each of those sites is sound only because of
//! an *argument* that lives outside the type system, so the argument must
//! be written down where the `unsafe` keyword is: a `// safety:` (or
//! `// SAFETY:`) comment on the same line or within the waiver window
//! above, or — for `unsafe fn`/`unsafe trait` — a `# Safety` rustdoc
//! section in the doc block.
//!
//! The rule runs on the token structure from [`tokens`](crate::tokens), so
//! an `unsafe` inside a string literal or a `#[cfg(test)]` module never
//! fires, and the audit distinguishes blocks from `unsafe fn` / `unsafe
//! impl` / `unsafe trait` / `unsafe extern` for the census printed by
//! `cargo xtask lint --report`.

use std::path::Path;

use crate::lint::{waiver_near, FileClass, Violation};
use crate::tokens::Structure;

/// Per-file (aggregated per-crate by the driver) unsafe-site counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeCensus {
    pub blocks: usize,
    pub fns: usize,
    pub impls: usize,
    pub traits: usize,
    pub externs: usize,
}

impl UnsafeCensus {
    /// Total unsafe sites.
    pub fn total(&self) -> usize {
        self.blocks + self.fns + self.impls + self.traits + self.externs
    }

    /// Adds another census into this one.
    pub fn absorb(&mut self, other: &UnsafeCensus) {
        self.blocks += other.blocks;
        self.fns += other.fns;
        self.impls += other.impls;
        self.traits += other.traits;
        self.externs += other.externs;
    }
}

/// Tokens that count as a safety justification. `waiver_near` matches
/// case-insensitively, so `// SAFETY:` (the clippy convention this
/// workspace already follows) and `// safety:` are one token; `# Safety`
/// accepts the rustdoc section heading for `unsafe fn`/`unsafe trait`.
const SAFETY_TOKENS: &[&str] = &["safety:", "# safety"];

/// Runs the unsafe-audit over one file's structure. Returns violations and
/// the file's census (test-gated sites are excluded from both).
pub fn check(
    rel: &Path,
    _class: FileClass<'_>,
    structure: &Structure,
    raw_lines: &[&str],
) -> (Vec<Violation>, UnsafeCensus) {
    let mut census = UnsafeCensus::default();
    let mut out = Vec::new();
    for site in &structure.unsafe_sites {
        if site.in_test {
            continue;
        }
        match site.kind {
            crate::tokens::UnsafeKind::Block => census.blocks += 1,
            crate::tokens::UnsafeKind::Fn => census.fns += 1,
            crate::tokens::UnsafeKind::Impl => census.impls += 1,
            crate::tokens::UnsafeKind::Trait => census.traits += 1,
            crate::tokens::UnsafeKind::Extern => census.externs += 1,
        }
        let justified = SAFETY_TOKENS
            .iter()
            .any(|token| waiver_near(raw_lines, site.line, token));
        if !justified {
            out.push(Violation {
                path: rel.to_path_buf(),
                line: site.line,
                rule: "unsafe-audit",
                message: format!(
                    "{} without a `// safety:` justification; write down the \
                     soundness argument next to the keyword (or a `# Safety` \
                     doc section for fns/traits)",
                    site.kind.describe()
                ),
            });
        }
    }
    (out, census)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::analyze;

    fn run(src: &str) -> Vec<Violation> {
        let structure = analyze(src);
        let raw: Vec<&str> = src.lines().collect();
        let class = FileClass {
            crate_name: "core",
            is_shim: false,
            is_bin: false,
        };
        check(Path::new("crates/core/src/x.rs"), class, &structure, &raw).0
    }

    #[test]
    fn seeded_unjustified_unsafe_block_is_flagged() {
        let v = run("fn f() { unsafe { danger() } }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-audit");
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("unsafe block"));
    }

    #[test]
    fn safety_comment_waives_block() {
        let src =
            "fn f() {\n    // safety: the pointer is checked above.\n    unsafe { danger() }\n}";
        assert!(run(src).is_empty());
        let upper = "fn f() {\n    // SAFETY: clippy-convention casing also counts.\n    unsafe { danger() }\n}";
        assert!(run(upper).is_empty());
    }

    #[test]
    fn long_safety_comment_block_waives() {
        // A thorough soundness argument can run many lines; comment lines
        // are transparent in the window, so the header still applies.
        let src = "fn f(job: &dyn Job) {\n\
                   // SAFETY: lifetime erasure only. The borrow strictly\n\
                   // outlives every use because submit() blocks until the\n\
                   // last participant returns, which is the same argument\n\
                   // std::thread::scope relies on; workers never stash the\n\
                   // reference beyond their role call.\n\
                   let job = unsafe { erase(job) };\n\
                   run(job);\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn safety_comment_survives_attributes_between() {
        // The waiver window skips attribute-only lines, so a justification
        // above #[inline] still applies.
        let src =
            "// safety: len checked by the caller.\n#[inline]\n#[cold]\nunsafe fn f() { body() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn doc_safety_section_waives_unsafe_fn() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller must hold the lock.\nunsafe fn f() { body() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_justification() {
        let v = run("unsafe impl Send for X {}");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unsafe impl"));
        let ok =
            "// safety: all fields are Send; the raw pointer is owned.\nunsafe impl Send for X {}";
        assert!(run(ok).is_empty());
    }

    #[test]
    fn test_gated_unsafe_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { poke() } }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_not_a_site() {
        let src = "fn f() { let s = \"unsafe { }\"; s.len(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn census_counts_kinds() {
        let src = "// safety: a.\nunsafe fn f() {}\n// safety: b.\nunsafe impl Send for X {}\n\
                   fn g() {\n    // safety: c.\n    unsafe { x() }\n}";
        let structure = analyze(src);
        let raw: Vec<&str> = src.lines().collect();
        let class = FileClass {
            crate_name: "core",
            is_shim: false,
            is_bin: false,
        };
        let (v, census) = check(Path::new("crates/core/src/x.rs"), class, &structure, &raw);
        assert!(v.is_empty());
        assert_eq!(census.fns, 1);
        assert_eq!(census.impls, 1);
        assert_eq!(census.blocks, 1);
        assert_eq!(census.total(), 3);
    }
}
