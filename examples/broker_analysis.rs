//! Brokerage analysis: single-source betweenness centrality (Brandes) on a
//! friendster-like social graph — which members sit on the most shortest
//! paths out of a community hub? Exercises both graph directions (forward
//! sweep on the graph, backward sweep on the transpose) and multi-device
//! striping.
//!
//! ```sh
//! cargo run --release --example broker_analysis
//! ```

use std::sync::Arc;

use blaze::algorithms::{bc, bfs, ExecMode};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::{Dataset, DatasetScale, DiskGraph};
use blaze::storage::StripedStorage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = Dataset::Friendster.generate(DatasetScale::Tiny);
    let transpose = csr.transpose();
    let n = csr.num_vertices();
    println!("social graph: {n} members, {} friendships", csr.num_edges());

    // Stripe each direction over four simulated SSDs.
    let out_graph = Arc::new(DiskGraph::create(
        &csr,
        Arc::new(StripedStorage::in_memory(4)?),
    )?);
    let in_graph = Arc::new(DiskGraph::create(
        &transpose,
        Arc::new(StripedStorage::in_memory(4)?),
    )?);
    let options = EngineOptions::default().with_compute_workers(4, 0.5);
    let out_engine = BlazeEngine::new(out_graph, options.clone())?;
    let in_engine = BlazeEngine::new(in_graph, options)?;

    // Hub = highest-degree member.
    let hub = (0..n as u32).max_by_key(|&v| csr.degree(v)).unwrap_or(0);
    println!(
        "analyzing shortest paths out of hub {hub} (degree {})",
        csr.degree(hub)
    );

    let scores = bc(&out_engine, &in_engine, hub, ExecMode::Binned)?;

    // How much of the hub's reach flows through the top brokers?
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores.get(b).partial_cmp(&scores.get(a)).unwrap());
    println!("top 5 brokers (dependency score = shortest paths carried):");
    for &v in order.iter().take(5) {
        println!(
            "  member {v}: score {:.1}, degree {}",
            scores.get(v),
            csr.degree(v as u32)
        );
    }

    // Cross-check reach with a plain BFS.
    let parent = bfs(&out_engine, hub, ExecMode::Binned)?;
    let reached = (0..n).filter(|&v| parent.get(v) != -1).count();
    let brokers = (0..n).filter(|&v| scores.get(v) > 0.0).count();
    println!("hub reaches {reached}/{n} members; {brokers} of them broker at least one path");

    // Striping keeps IO balanced across the four devices (Section IV-E).
    let per_device = out_engine.graph().storage().read_bytes_per_device();
    println!("per-device read bytes (forward sweep): {per_device:?}");
    Ok(())
}
