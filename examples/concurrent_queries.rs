//! Concurrent queries over one engine: the persistent runtime lets
//! independent jobs from multiple caller threads share the IO, scatter,
//! and gather workers, so several analyses can run against the same
//! on-SSD graph without duplicating buffers or threads.
//!
//! ```sh
//! cargo run --release --example concurrent_queries
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use blaze::algorithms::{self as algo, ExecMode, PageRankConfig};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::{gen, DiskGraph};
use blaze::storage::StripedStorage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = gen::rmat(&gen::RmatConfig::new(14));
    let storage = Arc::new(StripedStorage::in_memory(2)?);
    let graph = Arc::new(DiskGraph::create(&csr, storage)?);
    let engine = BlazeEngine::new(graph.clone(), EngineOptions::default())?;
    println!(
        "graph: {} vertices, {} edges; one engine, shared worker pool",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Sequential baseline: three BFS runs from different roots plus one
    // PageRank, one after the other.
    let roots = [0u32, 1, 2];
    let pr_cfg = PageRankConfig {
        max_iters: 10,
        ..Default::default()
    };
    let t0 = Instant::now();
    let seq_parents: Vec<_> = roots
        .iter()
        .map(|&r| algo::bfs(&engine, r, ExecMode::Binned))
        .collect::<Result<_, _>>()?;
    let seq_ranks = algo::pagerank_delta(&engine, pr_cfg, ExecMode::Binned)?;
    let sequential = t0.elapsed();

    // Concurrent: the same four queries submitted from four threads at
    // once. Each job checks out its own bin/buffer arena; the runtime
    // serves them all on the same persistent workers in submission order.
    let t1 = Instant::now();
    let (par_parents, par_ranks) = thread::scope(|s| {
        let engine = &engine;
        let bfs_handles: Vec<_> = roots
            .iter()
            .map(|&r| s.spawn(move || algo::bfs(engine, r, ExecMode::Binned)))
            .collect();
        let pr_handle = s.spawn(move || algo::pagerank_delta(engine, pr_cfg, ExecMode::Binned));
        let parents: Vec<_> = bfs_handles
            .into_iter()
            .map(|h| h.join().expect("bfs thread panicked"))
            .collect();
        (parents, pr_handle.join().expect("pagerank thread panicked"))
    });
    let par_parents = par_parents.into_iter().collect::<Result<Vec<_>, _>>()?;
    let par_ranks = par_ranks?;
    let concurrent = t1.elapsed();

    // Verify the concurrent answers against the sequential ones.
    let n = graph.num_vertices();
    for (i, (seq, par)) in seq_parents.iter().zip(&par_parents).enumerate() {
        for v in 0..n {
            assert_eq!(
                seq.get(v) == -1,
                par.get(v) == -1,
                "bfs from root {} diverged at vertex {v}",
                roots[i]
            );
        }
    }
    for v in 0..n {
        assert!(
            (seq_ranks.get(v) - par_ranks.get(v)).abs() < 1e-9,
            "pagerank diverged at vertex {v}"
        );
    }

    println!("sequential: {sequential:?}");
    println!("concurrent: {concurrent:?}");
    println!("all concurrent results match sequential execution");
    Ok(())
}
