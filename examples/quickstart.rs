//! Quickstart: build a graph, store it out-of-core, run BFS with the
//! EdgeMap API (Algorithm 1 of the paper).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use blaze::engine::{BlazeEngine, EngineOptions, VertexArray};
use blaze::frontier::VertexSubset;
use blaze::graph::{gen, DiskGraph};
use blaze::storage::StripedStorage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a power-law graph (or bring your own edge list through
    //    `GraphBuilder`).
    let csr = gen::rmat(&gen::RmatConfig::new(14));
    println!(
        "graph: {} vertices, {} edges ({} pages on disk)",
        csr.num_vertices(),
        csr.num_edges(),
        csr.num_edges().div_ceil(1024),
    );

    // 2. Write it to storage, page-interleaved. Here: two in-memory
    //    "SSDs"; swap in `FileDevice`s for real files.
    let storage = Arc::new(StripedStorage::in_memory(2)?);
    let graph = Arc::new(DiskGraph::create(&csr, storage)?);

    // 3. Create the engine. Only the index (~4.5 B/vertex) and the
    //    page->vertex map (8 B/page) stay in memory.
    let engine = BlazeEngine::new(graph.clone(), EngineOptions::default())?;
    println!(
        "semi-external metadata: {} bytes vs {} bytes of graph",
        graph.metadata_bytes(),
        graph.storage_bytes()
    );

    // 4. BFS via EdgeMap: scatter sends the source id, cond skips visited
    //    destinations, gather claims the parent — no atomics needed, the
    //    online-binning engine guarantees per-destination exclusivity.
    let root = 0u32;
    let n = graph.num_vertices();
    let parent = VertexArray::<i64>::new(n, -1);
    parent.set(root as usize, root as i64);
    let mut frontier = VertexSubset::single(n, root);
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        frontier = engine.edge_map(
            &frontier,
            |src, _dst| src,
            |dst, v| {
                if parent.get(dst as usize) == -1 {
                    parent.set(dst as usize, v as i64);
                    true
                } else {
                    false
                }
            },
            |dst| parent.get(dst as usize) == -1,
            true,
        )?;
        println!("depth {depth}: frontier {}", frontier.len());
    }

    let reached = (0..n).filter(|&v| parent.get(v) != -1).count();
    let stats = engine.stats();
    println!(
        "reached {reached}/{n} vertices in {} iterations; read {} bytes over {} IO requests",
        stats.iterations, stats.io_bytes, stats.io_requests
    );
    Ok(())
}
