//! Scale-out prototype (the paper's Section VI sketch): BFS over a
//! destination-partitioned cluster. Each "machine" owns the edges whose
//! destination falls in its range, runs a full Blaze engine over its own
//! SSDs, and gathers entirely locally — the only cross-machine traffic is
//! the per-iteration frontier broadcast, which the run reports.
//!
//! ```sh
//! cargo run --release --example scaleout_cluster
//! ```

use blaze::engine::{EngineOptions, VertexArray};
use blaze::frontier::VertexSubset;
use blaze::graph::{Dataset, DatasetScale};
use blaze::scaleout::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = Dataset::Rmat30.generate(DatasetScale::Tiny);
    let n = csr.num_vertices();
    println!("graph: {n} vertices, {} edges", csr.num_edges());

    for machines in [1usize, 2, 4] {
        let cluster = Cluster::build(&csr, machines, 1, EngineOptions::default())?;
        let level = VertexArray::<i64>::new(n, -1);
        level.set(0, 0);
        let mut frontier = VertexSubset::single(n, 0);
        let mut depth = 0i64;
        while !frontier.is_empty() {
            depth += 1;
            let d = depth;
            frontier = cluster.edge_map(
                &frontier,
                |_s, _dst| 0u32,
                |dst, _v| {
                    if level.get(dst as usize) == -1 {
                        level.set(dst as usize, d);
                        true
                    } else {
                        false
                    }
                },
                |dst| level.get(dst as usize) == -1,
                true,
                4, // broadcast payload: 4-byte level per activation
            )?;
        }
        let stats = cluster.stats();
        let per_machine: Vec<u64> = stats.per_shard.iter().map(|s| s.io_bytes).collect();
        println!(
            "{machines} machine(s): {} rounds, IO per machine {per_machine:?}, \
             frontier deltas {} wire + {} value bytes in {} messages",
            stats.rounds, stats.exchange_bytes, stats.exchange_value_bytes, stats.exchange_messages
        );
    }
    println!("note: gather never crosses machines — destination partitioning keeps bins local");
    Ok(())
}
