//! Social-network influence ranking: PageRank-delta on a twitter-like
//! power-law graph, comparing the online-binning engine with the
//! synchronization-based variant (Figure 8's experiment, in miniature).
//!
//! ```sh
//! cargo run --release --example social_ranking
//! ```

use std::sync::Arc;

use blaze::algorithms::{pagerank_delta, ExecMode, PageRankConfig};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::{Dataset, DatasetScale, DiskGraph};
use blaze::storage::StripedStorage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = Dataset::Twitter.generate(DatasetScale::Tiny);
    println!(
        "twitter-like graph: {} users, {} follow edges",
        csr.num_vertices(),
        csr.num_edges()
    );

    let mut results = Vec::new();
    for mode in [ExecMode::Binned, ExecMode::Sync] {
        let storage = Arc::new(StripedStorage::in_memory(1)?);
        let graph = Arc::new(DiskGraph::create(&csr, storage)?);
        let engine = BlazeEngine::new(graph, EngineOptions::default())?;
        let ranks = pagerank_delta(&engine, PageRankConfig::default(), mode)?;
        let stats = engine.stats();
        println!(
            "{mode}: {} iterations, {} edges scattered, {} records gathered, {} atomic RMWs",
            stats.iterations,
            stats.edges_processed,
            stats.records_produced,
            engine
                .take_traces()
                .iter()
                .map(|t| t.atomic_ops)
                .sum::<u64>(),
        );
        results.push(ranks.to_vec());
    }

    // Both execution modes must agree on the ranking.
    let (binned, sync) = (&results[0], &results[1]);
    let max_diff = binned
        .iter()
        .zip(sync)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |binned - sync| rank difference: {max_diff:.2e}");

    // Top influencers.
    let mut order: Vec<usize> = (0..binned.len()).collect();
    order.sort_by(|&a, &b| binned[b].partial_cmp(&binned[a]).unwrap());
    println!("top 5 users by rank:");
    for &v in order.iter().take(5) {
        println!(
            "  user {v}: rank {:.6}, out-degree {}",
            binned[v],
            csr.degree(v as u32)
        );
    }
    Ok(())
}
