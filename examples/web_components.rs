//! Web-graph analysis on real files: persist a crawl-ordered web graph in
//! the artifact's on-disk format (`.gr.index` + striped `.gr.adj.<i>`),
//! reopen it, and find its weakly connected components out-of-core.
//!
//! ```sh
//! cargo run --release --example web_components
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use blaze::algorithms::{wcc, ExecMode};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::disk::save_files;
use blaze::graph::{Dataset, DatasetScale, DiskGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csr = Dataset::Sk2005.generate(DatasetScale::Tiny);
    let transpose = csr.transpose();
    println!(
        "web graph: {} pages, {} hyperlinks",
        csr.num_vertices(),
        csr.num_edges()
    );

    // Persist both directions as the artifact does: `sk.gr.*` for
    // out-links and `sk.tgr.*` for in-links, striped over two files.
    let dir = tempfile::tempdir()?;
    let (gr_index, gr_adj) = save_files(&csr, dir.path(), "sk.gr", 2)?;
    let (tgr_index, tgr_adj) = save_files(&transpose, dir.path(), "sk.tgr", 2)?;
    let on_disk: u64 = gr_adj
        .iter()
        .chain(&tgr_adj)
        .chain([&gr_index, &tgr_index])
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    println!("persisted {} bytes under {}", on_disk, dir.path().display());

    // Reopen from files — this is the cold-start path a real deployment
    // uses — and run WCC over both directions.
    let out_graph = Arc::new(DiskGraph::open_files(&gr_index, &gr_adj)?);
    let in_graph = Arc::new(DiskGraph::open_files(&tgr_index, &tgr_adj)?);
    let out_engine = BlazeEngine::new(out_graph, EngineOptions::default())?;
    let in_engine = BlazeEngine::new(in_graph, EngineOptions::default())?;
    let labels = wcc(&out_engine, &in_engine, ExecMode::Binned)?;

    // Component census.
    let mut sizes: HashMap<u32, usize> = HashMap::new();
    for v in 0..labels.len() {
        *sizes.entry(labels.get(v)).or_default() += 1;
    }
    let mut census: Vec<(u32, usize)> = sizes.into_iter().collect();
    census.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("{} weakly connected components; largest:", census.len());
    for (label, size) in census.iter().take(3) {
        println!(
            "  component rooted at page {label}: {size} pages ({:.1}% of the web)",
            100.0 * *size as f64 / labels.len() as f64
        );
    }
    println!(
        "total IO: {} bytes out-graph, {} bytes in-graph",
        out_engine.stats().io_bytes,
        in_engine.stats().io_bytes
    );
    Ok(())
}
