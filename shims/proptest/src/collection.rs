//! Collection strategies: `vec` and `btree_set`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::collections::BTreeSet;
use std::ops::Range;

/// Collection-size specification: an exact count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            (self.lo..self.hi_exclusive).generate(rng)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `len` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s with up to `size.end - 1` elements. As in
/// upstream, duplicate draws merge, so small element domains can yield
/// sets below the requested minimum size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_and_element_ranges() {
        let mut rng = TestRng::deterministic("vec");
        let strat = vec(3u32..9, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    #[test]
    fn btree_set_bounded() {
        let mut rng = TestRng::deterministic("set");
        let strat = btree_set(0u64..1000, 0..50);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 50);
        }
    }
}
