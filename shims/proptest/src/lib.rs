//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: integer/float range strategies, tuples, `collection::vec`,
//! `collection::btree_set`, `sample::select`, `any::<bool>()`, `prop_map`,
//! and the `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//! * Cases are generated from a fixed-seed SplitMix64 PRNG, so every run
//!   and every CI machine sees the same inputs.
//! * No shrinking: a failing case reports its index; re-running
//!   deterministically reproduces it.

pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Prints a pointer to the failing case when a property panics, since the
/// shim does not shrink.
#[doc(hidden)]
pub struct CaseReporter {
    /// Zero-based index of the case being executed.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: property failed on case index {} \
                 (deterministic seed; re-run reproduces it)",
                self.case
            );
        }
    }
}

/// The test-runner macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::strategy::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::strategy::ProptestConfig = $cfg;
            let mut rng = $crate::rng::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let _reporter = $crate::CaseReporter { case };
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` on the case loop, so it is only valid at the top
/// level of a property body (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
