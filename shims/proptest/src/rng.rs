//! Deterministic PRNG used to generate property-test cases.

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14). Deterministic:
/// seeded from the property name so each test sees a stable but distinct
/// stream across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from the property-test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() requires a non-zero bound");
        // Modulo bias is negligible for test-case generation purposes.
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("p");
        let mut b = TestRng::deterministic("p");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("q");
        assert_ne!(TestRng::deterministic("p").next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
