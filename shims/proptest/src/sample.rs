//! Sampling strategies: `select` from a fixed list.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy drawing uniformly from a non-empty list of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let mut rng = TestRng::deterministic("select");
        let strat = select(vec![1usize, 4, 16]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 4, 16]);
    }
}
