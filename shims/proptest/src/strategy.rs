//! Core strategy trait and the primitive strategies.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for producing values of `Value` from the deterministic PRNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(rng.below(span + 1) as $ty)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $ty;
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical whole-domain strategy (only what the tests use).
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — a strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy always producing clones of one value (`Just` in upstream).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (0u8..=255).generate(&mut rng);
            let _ = w; // full domain, nothing to assert beyond type
            let s = (-4i64..9).generate(&mut rng);
            assert!((-4..9).contains(&s));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = TestRng::deterministic("float");
        for _ in 0..500 {
            let x = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..200 {
            assert!(strat.generate(&mut rng) < 19);
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic("bools");
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
