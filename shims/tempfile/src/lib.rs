//! Minimal offline stand-in for the `tempfile` crate: uniquely named
//! temporary directories with recursive cleanup on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: Option<PathBuf>,
}

impl TempDir {
    /// Creates a fresh uniquely-named temporary directory.
    pub fn new() -> std::io::Result<Self> {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        // sync-audit: process-wide unique suffix counter; ordering is
        // irrelevant, only uniqueness of fetch_add results matters.
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let name = format!("blaze-tmp-{}-{}-{}", std::process::id(), seq, nanos);
        let path = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&path)?;
        Ok(Self { path: Some(path) })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        self.path
            .as_deref()
            .expect("TempDir path present until drop")
    }

    /// Disables cleanup and returns the path.
    pub fn keep(mut self) -> PathBuf {
        self.path.take().expect("TempDir path present until drop")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_dir_all(path);
        }
    }
}

/// Creates a [`TempDir`] (the upstream crate's free-function spelling).
pub fn tempdir() -> std::io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = tempdir().unwrap();
        let p = dir.path().to_path_buf();
        assert!(p.is_dir());
        std::fs::write(p.join("f.txt"), b"x").unwrap();
        drop(dir);
        assert!(!p.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
