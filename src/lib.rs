//! Blaze: an out-of-core graph processing engine for fast NVMe SSDs.
//!
//! This facade crate re-exports the public API of the Blaze workspace. See
//! the README for a quickstart and `DESIGN.md` for the system inventory.

pub use blaze_algorithms as algorithms;
pub use blaze_baselines as baselines;
pub use blaze_binning as binning;
pub use blaze_core as engine;
pub use blaze_frontier as frontier;
pub use blaze_graph as graph;
pub use blaze_perfmodel as perfmodel;
pub use blaze_scaleout as scaleout;
pub use blaze_storage as storage;
pub use blaze_types as types;
