//! Concurrent job submission against one engine: the persistent runtime
//! must let independent queries from multiple caller threads interleave
//! safely (per-job bin/buffer arenas, shared worker pool) and produce the
//! same answers as sequential execution.

#![allow(clippy::needless_range_loop)] // vertex-id indexing reads clearer here

use std::sync::Arc;
use std::thread;

use blaze::algorithms::{self as algo, reference, ExecMode, PageRankConfig};
use blaze::binning::BinningConfig;
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::{gen, Csr, DiskGraph};
use blaze::storage::StripedStorage;

fn engine_over(csr: &Csr, devices: usize, options: EngineOptions) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
    let graph = Arc::new(DiskGraph::create(csr, storage).unwrap());
    BlazeEngine::new(graph, options).unwrap()
}

/// BFS and PageRank submitted simultaneously from two threads against a
/// single engine match their sequential runs. Exercises the type-scanned
/// arena cache too: BFS checks out a `BinSpace<u32>`, PageRank a
/// `BinSpace<f64>`, concurrently.
#[test]
fn bfs_and_pagerank_from_two_threads_match_sequential() {
    let csr = gen::rmat(&gen::RmatConfig::new(10));
    let engine = engine_over(&csr, 2, EngineOptions::default());

    let seq_parent = algo::bfs(&engine, 0, ExecMode::Binned).unwrap();
    let pr_cfg = PageRankConfig {
        max_iters: 10,
        ..Default::default()
    };
    let seq_ranks = algo::pagerank_delta(&engine, pr_cfg, ExecMode::Binned).unwrap();

    let (par_parent, par_ranks) = thread::scope(|s| {
        let bfs_handle = s.spawn(|| algo::bfs(&engine, 0, ExecMode::Binned).unwrap());
        let pr_handle =
            s.spawn(|| algo::pagerank_delta(&engine, pr_cfg, ExecMode::Binned).unwrap());
        (bfs_handle.join().unwrap(), pr_handle.join().unwrap())
    });

    for v in 0..csr.num_vertices() {
        assert_eq!(
            seq_parent.get(v) == -1,
            par_parent.get(v) == -1,
            "bfs reachability diverged at vertex {v}"
        );
        assert!(
            (seq_ranks.get(v) - par_ranks.get(v)).abs() < 1e-9,
            "pagerank diverged at vertex {v}: {} vs {}",
            seq_ranks.get(v),
            par_ranks.get(v)
        );
    }
}

/// Stress: several threads hammer one engine configured with a tiny bin
/// count and bin space, so jobs constantly cycle buffers through the
/// back-pressure path while interleaving in the shared worker mailboxes.
/// Every thread's answer must match the single-threaded reference.
#[test]
fn stress_small_bins_many_threads() {
    let csr = gen::rmat(&gen::RmatConfig::new(9));
    let options =
        EngineOptions::default().with_binning(BinningConfig::new(4, 64 << 10, 8).unwrap());
    let engine = engine_over(&csr, 2, options);

    let roots: Vec<u32> = vec![0, 1, 7, 42];
    let expected: Vec<Vec<i64>> = roots
        .iter()
        .map(|&r| reference::bfs_levels(&csr, r))
        .collect();

    thread::scope(|s| {
        for (i, &root) in roots.iter().enumerate() {
            let engine = &engine;
            let levels = &expected[i];
            let csr = &csr;
            s.spawn(move || {
                // Two rounds per thread so arenas recycle mid-stress.
                for round in 0..2 {
                    let parent = algo::bfs(engine, root, ExecMode::Binned).unwrap();
                    for v in 0..csr.num_vertices() {
                        assert_eq!(
                            parent.get(v) == -1,
                            levels[v] == -1,
                            "root {root} round {round}: reachability mismatch at {v}"
                        );
                    }
                }
            });
        }
    });
}

/// Sync-variant (CAS) jobs — which skip the gather stage — interleave with
/// binned jobs on the same worker pool without losing either.
#[test]
fn mixed_mode_submissions_interleave() {
    let csr = gen::rmat(&gen::RmatConfig::new(9));
    let engine = engine_over(&csr, 1, EngineOptions::default());
    let levels = reference::bfs_levels(&csr, 3);

    thread::scope(|s| {
        for mode in [ExecMode::Binned, ExecMode::Sync] {
            let engine = &engine;
            let levels = &levels;
            let csr = &csr;
            s.spawn(move || {
                let parent = algo::bfs(engine, 3, mode).unwrap();
                for v in 0..csr.num_vertices() {
                    assert_eq!(
                        parent.get(v) == -1,
                        levels[v] == -1,
                        "{mode:?}: reachability mismatch at {v}"
                    );
                }
            });
        }
    });
}
