//! End-to-end integration tests spanning the whole stack: generators →
//! on-disk format → engine → algorithms → references, including the
//! file-backed (cold-start) path and simulated-device wrapping.

#![allow(clippy::needless_range_loop)] // vertex-id indexing reads clearer here

use std::sync::Arc;

use blaze::algorithms::{self as algo, reference, ExecMode, PageRankConfig};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::disk::save_files;
use blaze::graph::{gen, Csr, Dataset, DatasetScale, DiskGraph};
use blaze::storage::{BlockDevice, DeviceProfile, FileDevice, SimDevice, StripedStorage};

fn engine_over(csr: &Csr, devices: usize) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
    let graph = Arc::new(DiskGraph::create(csr, storage).unwrap());
    BlazeEngine::new(graph, EngineOptions::default()).unwrap()
}

#[test]
fn bfs_agrees_with_reference_on_every_dataset() {
    for dataset in Dataset::main_six() {
        let csr = dataset.generate(DatasetScale::Tiny);
        let engine = engine_over(&csr, 2);
        let root = (0..csr.num_vertices() as u32)
            .max_by_key(|&v| csr.degree(v))
            .unwrap();
        let parent = algo::bfs(&engine, root, ExecMode::Binned).unwrap();
        let levels = reference::bfs_levels(&csr, root);
        for v in 0..csr.num_vertices() {
            assert_eq!(
                parent.get(v) == -1,
                levels[v] == -1,
                "{dataset}: reachability mismatch at vertex {v}"
            );
        }
    }
}

#[test]
fn wcc_agrees_with_union_find_on_every_dataset() {
    for dataset in [Dataset::Rmat27, Dataset::Uran27, Dataset::Sk2005] {
        let csr = dataset.generate(DatasetScale::Tiny);
        let t = csr.transpose();
        let out_engine = engine_over(&csr, 1);
        let in_engine = engine_over(&t, 1);
        let ids = algo::wcc(&out_engine, &in_engine, ExecMode::Binned).unwrap();
        assert_eq!(ids.to_vec(), reference::wcc_labels(&csr), "{dataset}");
    }
}

#[test]
fn binned_and_sync_modes_agree_on_all_queries() {
    let csr = gen::rmat(&gen::RmatConfig::new(9));
    let t = csr.transpose();
    // BFS reachability.
    let p1 = algo::bfs(&engine_over(&csr, 1), 0, ExecMode::Binned).unwrap();
    let p2 = algo::bfs(&engine_over(&csr, 1), 0, ExecMode::Sync).unwrap();
    for v in 0..csr.num_vertices() {
        assert_eq!(p1.get(v) == -1, p2.get(v) == -1, "bfs reach at {v}");
    }
    // PageRank values.
    let cfg = PageRankConfig::default();
    let r1 = algo::pagerank_delta(&engine_over(&csr, 1), cfg, ExecMode::Binned).unwrap();
    let r2 = algo::pagerank_delta(&engine_over(&csr, 1), cfg, ExecMode::Sync).unwrap();
    for v in 0..csr.num_vertices() {
        assert!((r1.get(v) - r2.get(v)).abs() < 1e-9, "pr at {v}");
    }
    // WCC labels.
    let w1 = algo::wcc(&engine_over(&csr, 1), &engine_over(&t, 1), ExecMode::Binned).unwrap();
    let w2 = algo::wcc(&engine_over(&csr, 1), &engine_over(&t, 1), ExecMode::Sync).unwrap();
    assert_eq!(w1.to_vec(), w2.to_vec());
    // BC scores.
    let b1 = algo::bc(
        &engine_over(&csr, 1),
        &engine_over(&t, 1),
        0,
        ExecMode::Binned,
    )
    .unwrap();
    let b2 = algo::bc(
        &engine_over(&csr, 1),
        &engine_over(&t, 1),
        0,
        ExecMode::Sync,
    )
    .unwrap();
    for v in 0..csr.num_vertices() {
        assert!(
            (b1.get(v) - b2.get(v)).abs() < 1e-9 * b1.get(v).abs().max(1.0),
            "bc at {v}"
        );
    }
}

#[test]
fn cold_start_from_files_with_simulated_optane() {
    let csr = gen::rmat(&gen::RmatConfig::new(9));
    let dir = tempfile::tempdir().unwrap();
    let (index_path, adj_paths) = save_files(&csr, dir.path(), "g.gr", 2).unwrap();

    // Reopen through SimDevice-wrapped file devices: the full production
    // stack (files + device model + engine).
    let devices: Vec<Arc<dyn BlockDevice>> = adj_paths
        .iter()
        .map(|p| {
            Arc::new(SimDevice::new(
                FileDevice::open(p).unwrap(),
                DeviceProfile::optane_p4800x(),
            )) as Arc<dyn BlockDevice>
        })
        .collect();
    let storage = Arc::new(StripedStorage::new(devices).unwrap());
    let graph = Arc::new(DiskGraph::open(&index_path, storage).unwrap());
    assert_eq!(graph.num_vertices(), csr.num_vertices());
    assert_eq!(graph.num_edges(), csr.num_edges());

    let engine = BlazeEngine::new(graph.clone(), EngineOptions::default()).unwrap();
    let parent = algo::bfs(&engine, 0, ExecMode::Binned).unwrap();
    let levels = reference::bfs_levels(&csr, 0);
    for v in 0..csr.num_vertices() {
        assert_eq!(parent.get(v) == -1, levels[v] == -1);
    }
    // The simulated devices accumulated modeled busy time.
    for d in graph.storage().devices() {
        assert!(d.stats().busy_ns() > 0);
        assert!(d.stats().read_bytes() > 0);
    }
}

#[test]
fn spmv_exact_on_files_and_memory() {
    let csr = gen::uniform(9, 8, 11);
    let x: Vec<f64> = (0..csr.num_vertices()).map(|i| (i % 17) as f64).collect();
    let expect = reference::spmv(&csr, &x);

    let engine = engine_over(&csr, 3);
    let y = algo::spmv(&engine, &x, ExecMode::Binned).unwrap();
    for v in 0..csr.num_vertices() {
        assert!((y.get(v) - expect[v]).abs() < 1e-9);
    }
}

#[test]
fn striping_balances_io_for_every_query() {
    let csr = gen::rmat(&gen::RmatConfig::new(10));
    let engine = engine_over(&csr, 4);
    let x: Vec<f64> = vec![1.0; csr.num_vertices()];
    algo::spmv(&engine, &x, ExecMode::Binned).unwrap();
    let per_device = engine.graph().storage().read_bytes_per_device();
    let max = *per_device.iter().max().unwrap();
    let min = *per_device.iter().min().unwrap();
    assert!(
        max - min <= 16 * 4096,
        "page interleaving must balance IO: {per_device:?}"
    );
}

#[test]
fn traces_feed_the_performance_model() {
    use blaze::perfmodel::{MachineConfig, PerfModel};
    let csr = Dataset::Rmat30.generate(DatasetScale::Tiny);
    let engine = engine_over(&csr, 1);
    let cfg = PageRankConfig {
        max_iters: 10,
        ..Default::default()
    };
    algo::pagerank_delta(&engine, cfg, ExecMode::Binned).unwrap();
    let traces = engine.take_traces();
    assert!(traces.len() >= 2);

    let model = PerfModel::new(MachineConfig::paper_optane());
    let blaze = model.blaze_query(&traces);
    let sync = model.sync_query(&traces);
    // The headline claim: online binning beats CAS on skewed PR.
    assert!(
        blaze.avg_bandwidth() > 1.5 * sync.avg_bandwidth(),
        "binned {} vs sync {}",
        blaze.avg_bandwidth(),
        sync.avg_bandwidth()
    );
    // And Blaze stays near the device bandwidth.
    assert!(blaze.avg_bandwidth() > 0.75 * model.machine.aggregate_bandwidth());
}
