//! Failure-injection tests: IO errors must propagate out of the
//! multi-threaded EdgeMap pipeline as `Err`, without hangs, panics, or
//! silent data corruption, and the engine must remain usable afterwards.

use std::sync::Arc;

use blaze::algorithms::{self as algo, ExecMode};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::frontier::VertexSubset;
use blaze::graph::{gen, Csr, DiskGraph};
use blaze::storage::{BlockDevice, FaultyDevice, MemDevice, StripedStorage};
use blaze::types::BlazeError;

/// Builds a graph whose storage fails after `ok_reads` successful reads.
fn flaky_engine(g: &Csr, ok_reads: u64) -> BlazeEngine {
    // Write through a pristine device first, then wrap.
    let good = Arc::new(StripedStorage::in_memory(1).unwrap());
    let _ = DiskGraph::create(g, good.clone()).unwrap();
    // Copy pages into a fresh MemDevice wrapped with fault injection.
    let mem = MemDevice::new();
    let mut buf = vec![0u8; blaze::types::PAGE_SIZE];
    for p in 0..good.num_pages() {
        good.read_page(p, &mut buf).unwrap();
        mem.write_at(p * blaze::types::PAGE_SIZE as u64, &buf)
            .unwrap();
    }
    mem.stats().reset();
    let faulty: Arc<dyn BlockDevice> = Arc::new(FaultyDevice::fail_after(mem, ok_reads));
    let storage = Arc::new(StripedStorage::new(vec![faulty]).unwrap());
    let graph = Arc::new(DiskGraph::open_with_index(g, storage));
    BlazeEngine::new(graph, EngineOptions::default()).unwrap()
}

/// Helper: DiskGraph from a CSR whose pages already live in `storage`.
trait OpenWithIndex {
    fn open_with_index(g: &Csr, storage: Arc<StripedStorage>) -> DiskGraph;
}

impl OpenWithIndex for DiskGraph {
    fn open_with_index(g: &Csr, storage: Arc<StripedStorage>) -> DiskGraph {
        // Rebuild metadata from the CSR (pages are already on the device).
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("idx");
        blaze::graph::disk::write_index_file(&path, &blaze::graph::GraphIndex::from_csr(g))
            .unwrap();
        DiskGraph::open(&path, storage).unwrap()
    }
}

#[test]
fn edge_map_surfaces_io_errors() {
    let g = gen::rmat(&gen::RmatConfig::new(9));
    let engine = flaky_engine(&g, 0);
    let frontier = VertexSubset::full(g.num_vertices());
    let result = engine.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false);
    match result {
        Err(BlazeError::Io(e)) => assert!(e.to_string().contains("injected"), "{e}"),
        other => panic!("expected injected IO error, got {other:?}"),
    }
}

#[test]
fn bfs_fails_cleanly_not_silently() {
    let g = gen::rmat(&gen::RmatConfig::new(9));
    let engine = flaky_engine(&g, 1);
    let err = algo::bfs(&engine, 0, ExecMode::Binned);
    assert!(
        err.is_err(),
        "BFS over failing storage must report the failure"
    );
}

#[test]
fn error_in_one_stripe_of_many_is_still_reported() {
    let g = gen::rmat(&gen::RmatConfig::new(9));
    // Stripe over 3 devices; device 1 fails immediately.
    let good = Arc::new(StripedStorage::in_memory(3).unwrap());
    let _ = DiskGraph::create(&g, good.clone()).unwrap();
    let devices: Vec<Arc<dyn BlockDevice>> = (0..3)
        .map(|d| -> Arc<dyn BlockDevice> {
            let mem = MemDevice::new();
            let mut buf = vec![0u8; blaze::types::PAGE_SIZE];
            let src = good.device(d);
            for p in 0..src.num_pages() {
                src.read_at(p * blaze::types::PAGE_SIZE as u64, &mut buf)
                    .unwrap();
                mem.write_at(p * blaze::types::PAGE_SIZE as u64, &buf)
                    .unwrap();
            }
            mem.stats().reset();
            if d == 1 {
                Arc::new(FaultyDevice::fail_after(mem, 0))
            } else {
                Arc::new(mem)
            }
        })
        .collect();
    let storage = Arc::new(StripedStorage::new(devices).unwrap());
    let graph = Arc::new(DiskGraph::open_with_index(&g, storage));
    let engine = BlazeEngine::new(graph, EngineOptions::default()).unwrap();
    let frontier = VertexSubset::full(g.num_vertices());
    let result = engine.edge_map(&frontier, |s, _d| s, |_d, _v| false, |_| true, false);
    assert!(result.is_err());
}

#[test]
fn engine_recovers_after_transient_failures() {
    let g = gen::rmat(&gen::RmatConfig::new(8));
    // fail_every(7): most requests succeed, some fail.
    let good = Arc::new(StripedStorage::in_memory(1).unwrap());
    let _ = DiskGraph::create(&g, good.clone()).unwrap();
    let mem = MemDevice::new();
    let mut buf = vec![0u8; blaze::types::PAGE_SIZE];
    for p in 0..good.num_pages() {
        good.read_page(p, &mut buf).unwrap();
        mem.write_at(p * blaze::types::PAGE_SIZE as u64, &buf)
            .unwrap();
    }
    mem.stats().reset();
    let faulty: Arc<dyn BlockDevice> = Arc::new(FaultyDevice::fail_every(mem, 1000));
    let storage = Arc::new(StripedStorage::new(vec![faulty]).unwrap());
    let graph = Arc::new(DiskGraph::open_with_index(&g, storage));
    let engine = BlazeEngine::new(graph, EngineOptions::default()).unwrap();
    let frontier = VertexSubset::full(g.num_vertices());
    // The scan issues far fewer than 1000 requests: it must succeed, and a
    // repeat run on the same engine must succeed too (no poisoned state).
    for _ in 0..2 {
        let out = engine
            .edge_map(&frontier, |s, _d| s, |_d, _v| true, |_| true, true)
            .unwrap();
        assert!(!out.is_empty());
    }
}
