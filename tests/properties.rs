//! Property-based tests over the core data structures and the engine's
//! end-to-end delivery guarantees, using randomly generated graphs, page
//! sets, and frontiers.

#![allow(clippy::needless_range_loop)] // vertex-id indexing reads clearer here

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use blaze::binning::{BinRecord, BinSpace, BinningConfig, ScatterStaging};
use blaze::engine::{BlazeEngine, EngineOptions, VertexArray};
use blaze::frontier::{PageSubset, VertexSubset};
use blaze::graph::{Csr, DiskGraph, GraphBuilder, GraphIndex, PageVertexMap};
use blaze::storage::request::{merge_pages_with_window, IoRequest};
use blaze::storage::StripedStorage;
use blaze::types::EDGES_PER_PAGE;

/// Strategy: a random edge list over `n` vertices.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        2usize..64,
        proptest::collection::vec((0u32..64, 0u32..64), 0..512),
    )
        .prop_map(|(n, edges)| {
            let n = n.max(
                edges
                    .iter()
                    .map(|&(s, d)| s.max(d) as usize + 1)
                    .max()
                    .unwrap_or(0),
            );
            let mut b = GraphBuilder::new(n).dedup(true);
            b.extend(edges);
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge_pages covers exactly the input pages, in order, respecting
    /// the window and never bridging gaps.
    #[test]
    fn merge_pages_partitions_input(
        pages in proptest::collection::btree_set(0u64..5_000, 0..400),
        window in 1usize..9,
    ) {
        let pages: Vec<u64> = pages.into_iter().collect();
        let requests = merge_pages_with_window(&pages, window);
        let mut covered = Vec::new();
        for IoRequest { first_page, num_pages } in &requests {
            prop_assert!(*num_pages as usize <= window);
            covered.extend(*first_page..first_page + *num_pages as u64);
        }
        prop_assert_eq!(covered, pages);
        // No two adjacent requests could have been merged further.
        for w in requests.windows(2) {
            let joinable = w[0].end_page() == w[1].first_page;
            if joinable {
                prop_assert_eq!(w[0].num_pages as usize, window);
            }
        }
    }

    /// The indirection index agrees with the plain prefix sum for any
    /// degree sequence.
    #[test]
    fn index_matches_prefix_sum(degrees in proptest::collection::vec(0u32..2000, 0..200)) {
        let index = GraphIndex::from_degrees(degrees.clone());
        let mut offset = 0u64;
        for (v, &d) in degrees.iter().enumerate() {
            prop_assert_eq!(index.edge_offset(v as u32), offset);
            prop_assert_eq!(index.degree(v as u32), d);
            offset += d as u64;
        }
        prop_assert_eq!(index.num_edges(), offset);
    }

    /// Every vertex with edges is covered by the page map span of each of
    /// its pages.
    #[test]
    fn pagemap_spans_are_sound(degrees in proptest::collection::vec(0u32..3000, 1..100)) {
        let index = GraphIndex::from_degrees(degrees.clone());
        let map = PageVertexMap::build(&index);
        let mut offset = 0u64;
        for (v, &d) in degrees.iter().enumerate() {
            if d > 0 {
                let first = offset / EDGES_PER_PAGE as u64;
                let last = (offset + d as u64 - 1) / EDGES_PER_PAGE as u64;
                for p in first..=last {
                    let (b, e) = map.vertices_in_page(p).expect("page exists");
                    prop_assert!(b <= v as u32 && v as u32 <= e);
                }
            }
            offset += d as u64;
        }
    }

    /// VertexSubset behaves like a HashSet under arbitrary insert
    /// sequences (including duplicates) and seals to a sorted list.
    #[test]
    fn vertex_subset_models_a_set(
        inserts in proptest::collection::vec(0u32..500, 0..600),
    ) {
        let mut s = VertexSubset::new(500);
        let mut model = HashSet::new();
        for v in inserts {
            prop_assert_eq!(s.insert(v), model.insert(v), "insert {}", v);
        }
        s.seal();
        prop_assert_eq!(s.len(), model.len());
        let mut expect: Vec<u32> = model.iter().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(s.members(), expect);
        for v in 0..500u32 {
            prop_assert_eq!(s.contains(v), model.contains(&v));
        }
    }

    /// Page frontiers preserve exactly the union of the input ranges under
    /// any device count.
    #[test]
    fn page_subset_round_trips(
        ranges in proptest::collection::vec((0u64..200, 0u64..5), 0..40),
        devices in 1usize..9,
    ) {
        let ranges: Vec<_> = ranges.into_iter().map(|(s, l)| s..=s + l).collect();
        let mut expect: Vec<u64> = ranges.iter().cloned().flatten().collect();
        expect.sort_unstable();
        expect.dedup();
        let subset = PageSubset::from_page_ranges(ranges, devices);
        prop_assert_eq!(subset.global_pages(), expect);
    }

    /// Online binning delivers every record exactly once, to the right
    /// bin, for any record stream and bin geometry.
    #[test]
    fn binning_delivers_exactly_once(
        dsts in proptest::collection::vec(0u32..10_000, 1..2000),
        bins in 1usize..40,
        capacity in 1usize..50,
    ) {
        let config = BinningConfig::new(bins, bins * 2 * capacity * 8, capacity.min(8)).unwrap();
        let space: BinSpace<u32> = BinSpace::new(config);
        let mut staging = ScatterStaging::new(&space);
        let mut collected: Vec<BinRecord<u32>> = Vec::new();
        // Drain full bins after every push: with no concurrent gather
        // thread, an undrained full queue would block the scatter side as
        // soon as a bin's second buffer fills (the engine's back-pressure).
        for &d in &dsts {
            staging.push(&space, d, d ^ 0xABCD);
            while space.process_one_full(|_, recs| collected.extend_from_slice(recs)) {}
        }
        staging.flush(&space);
        space.flush_partials();
        while space.process_one_full(|bin, recs| {
            for r in recs {
                assert_eq!(bin, r.dst as usize % bins);
            }
            collected.extend_from_slice(recs);
        }) {}
        prop_assert_eq!(collected.len(), dsts.len());
        let mut got: Vec<u32> = collected.iter().map(|r| r.dst).collect();
        let mut expect = dsts.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        for r in &collected {
            prop_assert_eq!(r.value, r.dst ^ 0xABCD);
        }
    }

    /// The out-of-core engine delivers each edge of the frontier exactly
    /// once, for arbitrary graphs, frontiers, and device counts.
    #[test]
    fn edge_map_delivers_frontier_edges_exactly_once(
        g in arb_graph(),
        frontier_bits in proptest::collection::vec(any::<bool>(), 64),
        devices in 1usize..4,
    ) {
        let n = g.num_vertices();
        let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
        let graph = Arc::new(DiskGraph::create(&g, storage).unwrap());
        let engine = BlazeEngine::new(graph, EngineOptions::default()).unwrap();
        let members: Vec<u32> = (0..n as u32).filter(|&v| frontier_bits[v as usize % 64]).collect();
        let frontier = VertexSubset::from_members(n, members.iter().copied());

        let hits = VertexArray::<u64>::new(n, 0);
        engine.edge_map(
            &frontier,
            |s, _d| s,
            |d, _v: u32| {
                hits.set(d as usize, hits.get(d as usize) + 1);
                false
            },
            |_| true,
            false,
        ).unwrap();

        // Expected: in-degree restricted to frontier sources.
        let mut expect = vec![0u64; n];
        for &s in &members {
            for &d in g.neighbors(s) {
                expect[d as usize] += 1;
            }
        }
        for v in 0..n {
            prop_assert_eq!(hits.get(v), expect[v], "vertex {}", v);
        }
    }
}
