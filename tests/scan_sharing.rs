//! Cross-job scan sharing must be invisible to query semantics: K mixed
//! queries running concurrently on one sharing engine return exactly what
//! each returns solo on a private engine, while the flight table quietly
//! collapses their overlapping device reads into single flights.

#![allow(clippy::needless_range_loop)] // vertex-id indexing reads clearer here

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use blaze::algorithms::{self as algo, ExecMode, PageRankConfig};
use blaze::engine::{BlazeEngine, EngineOptions};
use blaze::graph::{Csr, DiskGraph, GraphBuilder};
use blaze::storage::StripedStorage;

fn engine_over(csr: &Csr, devices: usize, options: EngineOptions) -> BlazeEngine {
    let storage = Arc::new(StripedStorage::in_memory(devices).unwrap());
    let graph = Arc::new(DiskGraph::create(csr, storage).unwrap());
    BlazeEngine::new(graph, options).unwrap()
}

fn sharing() -> EngineOptions {
    EngineOptions::default()
        .with_scan_sharing(true)
        .with_scan_share_lanes(4)
}

/// Strategy: a random connected-ish edge list over `n` vertices, with at
/// least one edge so every query actually touches the device.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        2usize..48,
        proptest::collection::vec((0u32..48, 0u32..48), 1..256),
    )
        .prop_map(|(n, edges)| {
            let n = n.max(
                edges
                    .iter()
                    .map(|&(s, d)| s.max(d) as usize + 1)
                    .max()
                    .unwrap_or(0),
            );
            let mut b = GraphBuilder::new(n).dedup(true);
            b.extend(edges);
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BFS + PageRank + WCC from three threads against one sharing engine
    /// (plus a sharing transpose engine for WCC) match their solo runs on
    /// private engines: BFS reachability identical, WCC labels identical,
    /// PageRank within 1e-6. With more than one job in the mix, at least
    /// one page must have been served from another flight (shared_hits >
    /// 0) whenever the queries iterate over the graph more than once.
    #[test]
    fn concurrent_mixed_queries_with_sharing_match_solo_runs(csr in arb_graph()) {
        let t = csr.transpose();
        let pr_cfg = PageRankConfig { max_iters: 5, ..Default::default() };

        // Solo baselines, each on its own engine with sharing off.
        let solo_parent = algo::bfs(
            &engine_over(&csr, 2, EngineOptions::default()), 0, ExecMode::Binned,
        ).unwrap();
        let solo_ranks = algo::pagerank_delta(
            &engine_over(&csr, 2, EngineOptions::default()), pr_cfg, ExecMode::Binned,
        ).unwrap();
        let solo_labels = algo::wcc(
            &engine_over(&csr, 2, EngineOptions::default()),
            &engine_over(&t, 2, EngineOptions::default()),
            ExecMode::Binned,
        ).unwrap();

        // K = 3 mixed jobs concurrently on one sharing engine.
        let engine = engine_over(&csr, 2, sharing());
        let in_engine = engine_over(&t, 2, sharing());
        let (parent, ranks, labels) = thread::scope(|s| {
            let bfs = s.spawn(|| algo::bfs(&engine, 0, ExecMode::Binned).unwrap());
            let pr = s.spawn(|| algo::pagerank_delta(&engine, pr_cfg, ExecMode::Binned).unwrap());
            let wcc = s.spawn(|| algo::wcc(&engine, &in_engine, ExecMode::Binned).unwrap());
            (bfs.join().unwrap(), pr.join().unwrap(), wcc.join().unwrap())
        });

        for v in 0..csr.num_vertices() {
            prop_assert_eq!(
                parent.get(v) == -1,
                solo_parent.get(v) == -1,
                "bfs reachability diverged at vertex {}", v
            );
            prop_assert!(
                (ranks.get(v) - solo_ranks.get(v)).abs() < 1e-6,
                "pagerank diverged at vertex {}: {} vs {}",
                v, ranks.get(v), solo_ranks.get(v)
            );
            prop_assert_eq!(
                labels.get(v), solo_labels.get(v),
                "wcc label diverged at vertex {}", v
            );
        }

        // PageRank and WCC iterate; their repeat scans must have joined
        // pending or retained flights (their own earlier iterations' at
        // minimum) instead of re-reading the device.
        let stats = engine.stats();
        if stats.iterations > 1 && stats.io_bytes > 0 {
            prop_assert!(
                stats.shared_hit_pages > 0,
                "concurrent jobs over {} iterations shared nothing", stats.iterations
            );
        }
    }
}
